open Csp
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer
module Snapshot = Csp_persist.Snapshot

type ctx = {
  digest : string;
  source : string;
  file : Parser.file;
  engines : (int, Engine.t) Hashtbl.t;
  mutable compiled_roots : Snapshot.compiled_root list;
  mutable proofs : (string * (Sequent.judgment * Proof.t)) list;
  lock : Mutex.t;
}

let ctx_of_source source =
  match Parser.parse_file source with
  | Error m -> Error m
  | Ok file ->
    Ok
      {
        digest = Digest.to_hex (Digest.string source);
        source;
        file;
        engines = Hashtbl.create 2;
        compiled_roots = [];
        proofs = [];
        lock = Mutex.create ();
      }

(* Engines are keyed by the sampler bound: depth and seed are
   per-query parameters ([with_depth]/[with_seed] share the caches),
   but [nat_bound] changes the transition relation and needs its own
   cache hierarchy — exactly the [Engine.with_sampler] rule. *)
let engine ctx ~nat_bound =
  match Hashtbl.find_opt ctx.engines nat_bound with
  | Some eng -> eng
  | None ->
    let eng = Engine.create ~nat_bound ctx.file.Parser.defs in
    Hashtbl.add ctx.engines nat_bound eng;
    eng

type outcome = { output : string; exit_code : int }

let record_compile ctx ~process ~budget ~nat_bound =
  let root = { Snapshot.process; budget; nat_bound } in
  if not (List.mem root ctx.compiled_roots) then
    ctx.compiled_roots <- root :: ctx.compiled_roots

let admit_proofs ctx proofs =
  List.iter
    (fun (j, proof) ->
      let key = Sequent.judgment_to_string j in
      if not (List.mem_assoc key ctx.proofs) then
        ctx.proofs <- (key, (j, proof)) :: ctx.proofs)
    proofs

let find_process ctx name =
  match Defs.lookup ctx.file.Parser.defs name with
  | Some _ -> Ok (Process.ref_ name)
  | None -> Error (Printf.sprintf "process %s is not defined" name)

let ( let* ) = Result.bind

(* ---- parse ------------------------------------------------------------ *)

(* Byte-for-byte the output of [cspc parse]: the printed definitions
   (print_endline appends one newline) followed by one line per
   assertion declaration. *)
let parse ctx =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printer.defs ctx.file.Parser.defs);
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Parser.Assert_plain (n, a) ->
        Buffer.add_string buf
          (Printf.sprintf "assert %s sat %s\n" n (Printer.assertion a))
      | Parser.Assert_array (q, x, m, a) ->
        Buffer.add_string buf
          (Printf.sprintf "assert forall %s:%s. %s[%s] sat %s\n" x
             (Printer.vset m) q x
             (Printer.assertion ~bound:[ x ] a)))
    ctx.file.Parser.decls;
  { output = Buffer.contents buf; exit_code = 0 }

(* ---- graph ------------------------------------------------------------ *)

let graph ctx ~process ~max_states ~nat_bound ~compiled:use_compiled =
  let* p = find_process ctx process in
  let eng = engine ctx ~nat_bound in
  let compiled =
    if use_compiled then begin
      record_compile ctx ~process ~budget:(Some max_states) ~nat_bound;
      Some (Engine.compile ~budget:max_states eng p)
    end
    else None
  in
  let lts =
    Lts.explore ~max_states ?compiled (Engine.step_config eng) p
  in
  let status =
    Printf.sprintf
      "%d states, %d transitions%s; deterministic=%b; deadlock states: %d\n"
      (Lts.num_states lts) (Lts.num_transitions lts)
      (if lts.Lts.complete then ""
       else
         Printf.sprintf " (truncated; %d states with dropped moves)"
           (List.length (Lts.truncated_states lts)))
      (Lts.is_deterministic lts)
      (List.length (Lts.deadlock_states lts))
  in
  Ok
    {
      output = status ^ Lts.to_dot ~name:process lts;
      exit_code = 0;
    }

(* ---- refine ----------------------------------------------------------- *)

let refine ctx ~impl ~spec ~depth ~nat_bound ~weak ~compiled:use_compiled =
  let* p = find_process ctx impl in
  let* q = find_process ctx spec in
  let eng = Engine.with_depth (engine ctx ~nat_bound) depth in
  let cfg = Engine.step_config eng in
  if weak then begin
    let compiler =
      if use_compiled then begin
        let compile r = Engine.compile ~budget:2000 eng r in
        record_compile ctx ~process:impl ~budget:(Some 2000) ~nat_bound;
        record_compile ctx ~process:spec ~budget:(Some 2000) ~nat_bound;
        ignore (compile p);
        ignore (compile q);
        Some compile
      end
      else None
    in
    let bisimilar = Bisim.weak_equivalent ?compiler cfg p q in
    Ok
      {
        output =
          Printf.sprintf "%s and %s weakly bisimilar (bounded): %b\n" impl
            spec bisimilar;
        exit_code = 0;
      }
  end
  else
    match Equiv.trace_refines ~depth cfg ~impl:p ~spec:q with
    | Ok () ->
      Ok
        {
          output =
            Printf.sprintf "%s trace-refines %s up to depth %d\n" impl spec
              depth;
          exit_code = 0;
        }
    | Error s ->
      Ok
        {
          output =
            Printf.sprintf "NOT a refinement: %s allows %s, %s does not\n"
              impl (Trace.to_string s) spec;
          exit_code = 1;
        }

(* ---- prove ------------------------------------------------------------ *)

let tables_of file =
  let invariants =
    List.filter_map
      (function Parser.Assert_plain (n, a) -> Some (n, a) | _ -> None)
      file.Parser.decls
  in
  let array_invariants =
    List.filter_map
      (function
        | Parser.Assert_array (q, x, m, a) -> Some (q, (x, m, a))
        | _ -> None)
      file.Parser.decls
  in
  Tactic.tables ~invariants ~array_invariants ()

(* [Tactic.prove_and_check] is [auto] followed by [Check.check], so
   re-checking a stored proof tree yields the same report — and hence
   the same output line — as searching for it afresh; only the search
   is skipped.  A stored proof that no longer checks (it cannot, for
   a fixed source) falls back to the tactic. *)
let prove ctx =
  let tables = tables_of ctx.file in
  let sctx = Sequent.context ctx.file.Parser.defs in
  let buf = Buffer.create 256 in
  let failures = ref 0 in
  List.iter
    (fun decl ->
      let name, judgment =
        match decl with
        | Parser.Assert_plain (n, a) -> (n, Sequent.Holds (Process.ref_ n, a))
        | Parser.Assert_array (q, x, m, a) ->
          (q ^ "[]", Sequent.Holds_all (q, x, m, a))
      in
      let key = Sequent.judgment_to_string judgment in
      let proved =
        match List.assoc_opt key ctx.proofs with
        | Some (_, proof) -> (
          match Check.check sctx judgment proof with
          | Ok report -> Some (proof, report)
          | Error _ -> None)
        | None -> None
      in
      let result =
        match proved with
        | Some pr -> Ok pr
        | None -> (
          match Tactic.prove_and_check ~tables sctx judgment with
          | Ok (proof, report) ->
            ctx.proofs <- (key, (judgment, proof)) :: ctx.proofs;
            Ok (proof, report)
          | Error m -> Error m)
      in
      match result with
      | Ok (proof, report) ->
        Buffer.add_string buf
          (Printf.sprintf
             "PROVED %s: %d rules, %d obligations (%d by testing)\n" name
             (Proof.size proof)
             (List.length report.Check.obligations)
             (Check.tested_obligations report))
      | Error m ->
        incr failures;
        Buffer.add_string buf (Printf.sprintf "FAILED %s: %s\n" name m))
    ctx.file.Parser.decls;
  { output = Buffer.contents buf;
    exit_code = (if !failures > 0 then 1 else 0) }

(* ---- fuzz ------------------------------------------------------------- *)

module Oracle = Csp_testkit.Oracle
module Fuzz = Csp_testkit.Fuzz

let resolve_oracles = function
  | [] -> Ok Oracle.all
  | names ->
    List.fold_left
      (fun acc n ->
        let* acc = acc in
        match Oracle.find n with
        | Some o -> Ok (o :: acc)
        | None ->
          Error
            (Printf.sprintf "unknown oracle %s (available: %s)" n
               (String.concat ", " (Oracle.names ()))))
      (Ok []) names
    |> Result.map List.rev

let fuzz ~seed ~count ~budget ~oracle_names =
  let* oracles = resolve_oracles oracle_names in
  let config =
    {
      Fuzz.default_config with
      Fuzz.seed;
      max_cases = count;
      budget;
      oracles;
      jobs = 1;
    }
  in
  let report = Fuzz.run config in
  Ok
    {
      output = Format.asprintf "%a@." Fuzz.pp_report report;
      exit_code = (if report.Fuzz.counterexamples <> [] then 1 else 0);
    }
