(** Client-side plumbing and replayed-traffic workloads for the
    verification service.

    The client half ({!connect}/{!request}) speaks the one-line-JSON
    protocol over a Unix socket; the workload half builds a mixed
    request stream — fuzz-corpus sources, {!Csp.Models} protocol
    instances rendered back to concrete syntax, and proof obligations
    — and {!replay}s it against a running server, timing every
    request from the client side.  Bench P15, [cspc client --bench]
    and the CI smoke leg all drive this module, so the traffic they
    measure is the same traffic. *)

module Json = Csp_persist.Json

(** {1 Client} *)

type conn

val connect : string -> (conn, string) result
(** Connect to the server socket.  [Error] carries the [Unix] error
    string (server not running, stale socket, …). *)

val request : conn -> Json.t -> (Json.t, string) result
(** One request frame out, one response frame in.  [Error] on
    disconnect, oversized response or a response that is not valid
    JSON. *)

val close : conn -> unit

val time_first : socket:string -> Json.t -> (float * Json.t, string) result
(** Fresh connection, one request, disconnect: the client-side
    latency in milliseconds plus the response.  This is how the bench
    measures cold-start vs warm-start first-request latency. *)

(** {1 Workloads} *)

type item = {
  label : string;
  request : Json.t;  (** complete request object, [id] added by replay *)
}

val model_items : stress:bool -> item list
(** Requests over {!Csp.Models} instances (token ring, two-phase
    commit, sliding window) rendered to concrete syntax: graph
    explorations through the compiled engine and trace-refinement
    checks against each model's specification.  With [stress] the
    instances are the large ones of the [@stress] suite — token ring
    at [n = 10], commit at [n = 6], the sliding window explored
    deeper — sized for sustained-throughput measurement rather than a
    smoke signal. *)

val corpus_items : (string * string) list -> item list
(** [(name, source)] pairs — typically the [.csp] fuzz corpus — each
    contributing a [parse], a [graph main] when [main] is defined,
    and a [prove] when the source declares assertions. *)

val prove_items : unit -> item list
(** Proof traffic on embedded paper sources (the copier and the
    ACK/NACK protocol) — the requests that exercise the
    proved-sequent cache across repetitions. *)

val fuzz_items : stress:bool -> item list

val mixed : ?stress:bool -> sources:(string * string) list -> unit -> item list
(** The replayed workload: corpus, model, proof and fuzz traffic
    interleaved deterministically (no randomness: the same call
    builds the same stream, so runs are comparable). *)

(** {1 Replay} *)

type timing = {
  label : string;
  ok : bool;  (** the response's [ok] field *)
  client_ms : float;  (** wall time around the socket round-trip *)
  server_ms : float;  (** the response's [elapsed_ms] field *)
}

type summary = {
  requests : int;
  errors : int;  (** transport failures plus [ok = false] responses *)
  wall_s : float;
  req_per_s : float;
  p50_ms : float;  (** client-side latency percentiles *)
  p99_ms : float;
}

val percentile : float -> float list -> float
(** Nearest-rank percentile; [0.] on the empty list. *)

val summarise : wall_s:float -> timing list -> summary

val replay :
  ?connections:int ->
  ?repeat:int ->
  socket:string ->
  item list ->
  (timing list * summary, string) result
(** Replay the stream [repeat] times (default 1) round-robin over
    [connections] persistent connections (default 1), sequentially —
    the client is single-threaded; server-side concurrency is
    exercised by opening the server with [--jobs].  [Error] only on
    transport-level failure (cannot connect / server vanished). *)
