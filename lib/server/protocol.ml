module Json = Csp_persist.Json

type error_kind =
  | Bad_request
  | Parse_error
  | Budget_exceeded
  | Frame_too_large
  | Malformed_frame
  | Internal

let kind_string = function
  | Bad_request -> "bad-request"
  | Parse_error -> "parse-error"
  | Budget_exceeded -> "budget-exceeded"
  | Frame_too_large -> "frame-too-large"
  | Malformed_frame -> "malformed-frame"
  | Internal -> "internal"

type limits = {
  max_frame : int;
  max_states : int;
  max_depth : int;
  max_cases : int;
  max_sources : int;
}

let default_limits =
  { max_frame = 4 * 1024 * 1024; max_states = 200_000; max_depth = 40;
    max_cases = 20_000; max_sources = 64 }

(* ---- framing ---------------------------------------------------------- *)

(* The buffer holds at most [max_frame + 1] bytes: we stop reading as
   soon as a newline is present, and declare the frame oversized the
   moment the buffered prefix exceeds the cap without one — bounded
   memory per connection by construction. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : bytes;
  max_frame : int;
  mutable carry : string;  (** bytes after the last returned frame *)
}

let reader ?(max_frame = default_limits.max_frame) fd =
  { fd; buf = Buffer.create 1024; chunk = Bytes.create 65536; max_frame;
    carry = "" }

let read_frame r =
  Buffer.clear r.buf;
  Buffer.add_string r.buf r.carry;
  r.carry <- "";
  let split_at_newline () =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      r.carry <- String.sub s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  in
  let rec go () =
    match split_at_newline () with
    | Some frame -> `Frame frame
    | None ->
      if Buffer.length r.buf > r.max_frame then `Too_large
      else begin
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        (* EOF with a partial (unterminated) frame buffered is a client
           that died mid-request: discard the fragment, it was never a
           complete request *)
        | 0 -> `Eof
        | n ->
          Buffer.add_subbytes r.buf r.chunk 0 n;
          go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof
      end
  in
  go ()

let buffered_frame r = String.contains r.carry '\n'

let write_frame fd s =
  let data = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length data in
  let rec go off =
    if off < n then
      let k = Unix.write fd data off (n - off) in
      go (off + k)
  in
  go 0

(* ---- responses -------------------------------------------------------- *)

let error_response ?(id = Json.Null) kind msg =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ("kind", Json.str (kind_string kind));
      ("error", Json.str msg);
    ]

let ok_response ~id ~op ?output ?exit_code ?stats ?(extra = []) ~elapsed_ms ()
    =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool true); ("op", Json.str op) ]
    @ (match output with Some o -> [ ("output", Json.str o) ] | None -> [])
    @ (match exit_code with
      | Some e -> [ ("exit", Json.int e) ]
      | None -> [])
    @ [ ("elapsed_ms", Json.Num elapsed_ms) ]
    @ (match stats with
      | Some kvs ->
        [ ("stats", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) kvs)) ]
      | None -> [])
    @ extra)
