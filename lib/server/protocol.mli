(** The wire protocol of [cspc serve].

    Frames are newline-delimited JSON objects, one request and one
    response per line.  A request names an [op] ([ping], [parse],
    [graph], [refine], [prove], [fuzz], [save], [load], [stats],
    [shutdown]) with op-specific parameters; a response echoes the
    request [id] and either carries the job's [output] text (exactly
    the bytes the one-shot [cspc] subcommand would print) or an
    [error] with a machine-readable [kind].

    The reader is bounded: a connection can never make the server
    buffer more than [max_frame] bytes — an oversized frame is
    reported as such and the connection dropped, so a misbehaving
    client cannot grow server memory without limit. *)

type error_kind =
  | Bad_request  (** missing/ill-typed parameters, unknown op or oracle *)
  | Parse_error  (** the submitted [.csp] source did not parse *)
  | Budget_exceeded  (** requested fuel above the server's per-request caps *)
  | Frame_too_large
  | Malformed_frame  (** the frame is not a JSON object *)
  | Internal

val kind_string : error_kind -> string

(** Per-request fuel caps; requests asking for more are answered with
    a graceful [budget-exceeded] error instead of unbounded work. *)
type limits = {
  max_frame : int;  (** request frame bytes (default 4 MiB) *)
  max_states : int;  (** exploration/compile state budget (default 200k) *)
  max_depth : int;  (** trace depth bound (default 40) *)
  max_cases : int;  (** fuzz cases per request (default 20k) *)
  max_sources : int;
      (** cached source contexts; the least recently used is evicted
          when a new source would exceed this (default 64) *)
}

val default_limits : limits

(** {1 Framing} *)

type reader

val reader : ?max_frame:int -> Unix.file_descr -> reader

val read_frame : reader -> [ `Frame of string | `Eof | `Too_large ]
(** Next newline-terminated frame, without the newline.  Buffered
    bytes never exceed [max_frame]; on [`Too_large] the connection
    must be dropped (the frame boundary is lost). *)

val buffered_frame : reader -> bool
(** Whether a complete frame is already buffered, so the next
    {!read_frame} will return without touching the socket.  The
    server's event loop uses this to drain pipelined requests before
    handing the connection back to the poller. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write the frame plus the terminating newline.  Raises
    [Unix.Unix_error] ([EPIPE]/[ECONNRESET]) if the peer vanished —
    callers treat that as a normal disconnect. *)

(** {1 Responses} *)

val error_response :
  ?id:Csp_persist.Json.t -> error_kind -> string -> Csp_persist.Json.t

val ok_response :
  id:Csp_persist.Json.t ->
  op:string ->
  ?output:string ->
  ?exit_code:int ->
  ?stats:(string * int) list ->
  ?extra:(string * Csp_persist.Json.t) list ->
  elapsed_ms:float ->
  unit ->
  Csp_persist.Json.t
(** [output]/[exit_code] mirror the one-shot CLI's stdout and exit
    status; [stats] (present when the request asked for it) is the
    per-request {!Csp_obs.Obs.delta_snapshot} counter diff; [extra]
    appends op-specific fields (cache hits, snapshot paths, …). *)
