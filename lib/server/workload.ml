open Csp
module Json = Csp_persist.Json
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer

(* ---- client ------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; reader : Protocol.reader }

(* Responses can be much larger than requests (a stress graph's DOT
   output runs to megabytes), so the client reads with a far higher
   frame cap than the server accepts. *)
let response_max_frame = 64 * 1024 * 1024

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; reader = Protocol.reader ~max_frame:response_max_frame fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let request conn j =
  match Protocol.write_frame conn.fd (Json.to_string j) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
    match Protocol.read_frame conn.reader with
    | `Eof -> Error "server closed the connection"
    | `Too_large -> Error "response frame too large"
    | `Frame line -> (
      match Json.parse line with
      | Ok j -> Ok j
      | Error m -> Error (Printf.sprintf "response is not valid JSON: %s" m)))

let time_first ~socket j =
  match connect socket with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok conn ->
    Fun.protect ~finally:(fun () -> close conn) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    (match request conn j with
    | Error _ as e -> e |> Result.map (fun _ -> assert false)
    | Ok resp -> Ok ((Unix.gettimeofday () -. t0) *. 1000., resp))

(* ---- workload items ---------------------------------------------------- *)

type item = { label : string; request : Json.t }

let req op kvs = Json.Obj (("op", Json.str op) :: kvs)
let src s = ("source", Json.str s)

(* A model back to concrete syntax: its definitions plus fresh names
   for the composite processes the requests will refer to. *)
let model_source defs extras =
  String.concat ""
    ((Printer.defs defs ^ "\n")
    :: List.map
         (fun (n, p) -> Printf.sprintf "%s = %s\n" n (Printer.process p))
         extras)

let model_items ~stress =
  let ring = Models.Token_ring.make ~n:(if stress then 10 else 3) in
  let commit = Models.Commit.make ~n:(if stress then 6 else 2) in
  let window = Models.Sliding_window.make ~w:2 in
  let ring_src =
    model_source ring.defs [ ("wlsys", ring.system); ("wlspec", ring.spec) ]
  in
  let commit_src =
    model_source commit.defs
      [ ("wlsys", commit.system); ("wlspec", commit.spec) ]
  in
  let window_src =
    model_source window.defs
      [ ("wlsys", window.system); ("wlspec", window.spec) ]
  in
  let states = if stress then 20_000 else 2_000 in
  let graph label source =
    {
      label = label ^ ":graph";
      request =
        req "graph"
          [ src source; ("process", Json.str "wlsys");
            ("max_states", Json.int states) ];
    }
  in
  let refine label source depth =
    {
      label = label ^ ":refine";
      request =
        req "refine"
          [ src source; ("impl", Json.str "wlsys");
            ("spec", Json.str "wlspec"); ("depth", Json.int depth) ];
    }
  in
  let ring_label = Printf.sprintf "ring%d" ring.n in
  let commit_label = Printf.sprintf "commit%d" commit.n in
  [
    graph ring_label ring_src;
    refine ring_label ring_src (if stress then 8 else 4);
    graph commit_label commit_src;
    refine commit_label commit_src (if stress then 6 else 4);
    graph "window2" window_src;
    refine "window2" window_src (if stress then 10 else 5);
    {
      label = "window2:weak";
      request =
        req "refine"
          [ src window_src; ("impl", Json.str "wlsys");
            ("spec", Json.str "wlspec"); ("weak", Json.Bool true) ];
    };
  ]

let corpus_items sources =
  List.concat_map
    (fun (name, text) ->
      match Parser.parse_file text with
      | Error _ -> []
      | Ok file ->
        let has_main = Defs.lookup file.Parser.defs "main" <> None in
        let has_asserts = file.Parser.decls <> [] in
        ({ label = name ^ ":parse"; request = req "parse" [ src text ] }
         :: (if has_main then
              [
                {
                  label = name ^ ":graph";
                  request =
                    req "graph"
                      [ src text; ("process", Json.str "main");
                        ("max_states", Json.int 2_000) ];
                };
              ]
            else []))
        @ (if has_asserts then
            [ { label = name ^ ":prove"; request = req "prove" [ src text ] } ]
          else []))
    sources

(* The paper's copier and ACK/NACK protocol (§1.3/§2.2), embedded so
   proof traffic needs no files on disk.  Repeating these is what
   exercises the proved-sequent cache: the first prove pays the tactic
   search, every later one re-checks the stored tree. *)
let copier_source =
  "copier = input?x:NAT -> output!x -> copier\n\
   assert copier sat output <= input\n"

let protocol_source =
  "sender = input?x:NAT -> q[x]\n\
   q[x:NAT] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])\n\
   receiver = wire?z:NAT -> (wire!ACK -> output!z -> receiver\n\
  \                         | wire!NACK -> receiver)\n\
   protocol = chan wire; (sender [ {input, wire} || {wire, output} ] receiver)\n\
   assert sender sat f(wire) <= input\n\
   assert forall x:NAT. q[x] sat f(wire) <= x^input\n\
   assert receiver sat output <= f(wire)\n\
   assert protocol sat output <= input\n"

let prove_items () =
  [
    { label = "copier:prove"; request = req "prove" [ src copier_source ] };
    { label = "protocol:prove"; request = req "prove" [ src protocol_source ] };
  ]

let fuzz_items ~stress =
  let count = if stress then 300 else 40 in
  let seeds = if stress then [ 101; 102; 103 ] else [ 101; 102 ] in
  List.map
    (fun seed ->
      {
        label = Printf.sprintf "fuzz:%d" seed;
        request =
          req "fuzz" [ ("seed", Json.int seed); ("count", Json.int count) ];
      })
    seeds

(* Deterministic round-robin interleave: the streams alternate, so
   cache-hitting repeats are separated by unrelated traffic the way
   real mixed load would separate them. *)
let interleave lists =
  let rec go acc lists =
    let heads, rests =
      List.fold_right
        (fun l (hs, ts) ->
          match l with [] -> (hs, ts) | x :: r -> (x :: hs, r :: ts))
        lists ([], [])
    in
    match heads with
    | [] -> List.rev acc
    | _ -> go (List.rev_append heads acc) rests
  in
  go [] lists

let mixed ?(stress = false) ~sources () =
  interleave
    [
      corpus_items sources;
      model_items ~stress;
      prove_items ();
      fuzz_items ~stress;
    ]

(* ---- replay ------------------------------------------------------------ *)

type timing = {
  label : string;
  ok : bool;
  client_ms : float;
  server_ms : float;
}

type summary = {
  requests : int;
  errors : int;
  wall_s : float;
  req_per_s : float;
  p50_ms : float;
  p99_ms : float;
}

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    List.nth sorted (min n (max 1 rank) - 1)

let summarise ~wall_s ts =
  let lats = List.map (fun t -> t.client_ms) ts in
  {
    requests = List.length ts;
    errors = List.length (List.filter (fun t -> not t.ok) ts);
    wall_s;
    req_per_s =
      (if wall_s > 0. then float_of_int (List.length ts) /. wall_s else 0.);
    p50_ms = percentile 50. lats;
    p99_ms = percentile 99. lats;
  }

let replay ?(connections = 1) ?(repeat = 1) ~socket items =
  let n = max 1 connections in
  let rec open_conns k acc =
    if k = 0 then Ok (List.rev acc)
    else
      match connect socket with
      | Ok c -> open_conns (k - 1) (c :: acc)
      | Error m ->
        List.iter close acc;
        Error m
  in
  match open_conns n [] with
  | Error m -> Error m
  | Ok conns ->
    let conns = Array.of_list conns in
    Fun.protect ~finally:(fun () -> Array.iter close conns) @@ fun () ->
    let timings = ref [] in
    let failure = ref None in
    let idx = ref 0 in
    let t_start = Unix.gettimeofday () in
    for _ = 1 to max 1 repeat do
      List.iter
        (fun it ->
          if !failure = None then begin
            let conn = conns.(!idx mod n) in
            incr idx;
            let request_json =
              match it.request with
              | Json.Obj kvs -> Json.Obj (("id", Json.int !idx) :: kvs)
              | j -> j
            in
            let t0 = Unix.gettimeofday () in
            match request conn request_json with
            | Error m -> failure := Some m
            | Ok resp ->
              let client_ms = (Unix.gettimeofday () -. t0) *. 1000. in
              let ok =
                Option.value ~default:false (Json.mem_bool "ok" resp)
              in
              let server_ms =
                Option.value ~default:0.
                  (Option.bind (Json.member "elapsed_ms" resp) Json.to_float)
              in
              timings :=
                { label = it.label; ok; client_ms; server_ms } :: !timings
          end)
        items
    done;
    let wall_s = Unix.gettimeofday () -. t_start in
    (match !failure with
    | Some m -> Error m
    | None ->
      let ts = List.rev !timings in
      Ok (ts, summarise ~wall_s ts))
