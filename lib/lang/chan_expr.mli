(** Channel expressions: a channel name with expression subscripts.

    [col[i-1]] in the multiplier's definition is the channel expression
    with base ["col"] and subscript [i - 1]; under a valuation binding
    [i] it evaluates to a concrete {!Csp_trace.Channel.t}. *)

type t = { name : string; subs : Expr.t list }

val simple : string -> t
val indexed : string -> Expr.t -> t

val eval : Valuation.t -> t -> Csp_trace.Channel.t
(** @raise Expr.Eval_error when a subscript cannot be evaluated. *)

val eval_opt : t -> Csp_trace.Channel.t option
(** Evaluate under the empty valuation; [None] if not closed. *)

val of_channel : Csp_trace.Channel.t -> t

val free_vars : t -> string list
val subst : string -> Expr.t -> t -> t
val subst_value : string -> Csp_trace.Value.t -> t -> t
val is_closed : t -> bool
val equal : t -> t -> bool

val hash : t -> int
(** Deep structural hash, consistent with structural equality. *)

val pp : Format.formatter -> t -> unit
