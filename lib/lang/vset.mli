(** Value-set expressions: the paper's message types.

    These are the sets [M] appearing in input prefixes [c?x:M → P], in
    process-array definitions [q[x:M] ≜ Q] and in bounded quantifiers of
    assertions.  [Nat] is infinite; bounded enumeration of infinite sets
    is delegated to samplers (see {!Csp_semantics.Sampler}). *)

type t =
  | Nat                          (** the natural numbers 0, 1, 2, … *)
  | Range of int * int           (** the finite range [{lo..hi}], inclusive *)
  | Enum of Csp_trace.Value.t list  (** an explicit finite set, e.g. [{ACK}] *)
  | Union of t * t
  | Bools

val mem : t -> Csp_trace.Value.t -> bool

val is_finite : t -> bool

val enumerate : t -> Csp_trace.Value.t list option
(** [enumerate m] lists the elements of [m] (deduplicated) when [m] is
    finite, [None] otherwise. *)

val enumerate_bounded : bound:int -> t -> Csp_trace.Value.t list
(** Like {!enumerate}, but infinite sets contribute their first [bound]
    naturals; always terminates.  This is the default sampler. *)

val signals : string list -> t
(** [signals ["ACK"; "NACK"]] is the enumeration of those symbols. *)

val equal : t -> t -> bool

val hash : t -> int
(** Deep structural hash, consistent with structural equality. *)

val pp : Format.formatter -> t -> unit
