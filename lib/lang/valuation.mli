(** Valuations: finite maps from program variables to message values.

    A valuation interprets the free variables of expressions, processes
    and assertions (the "environment" of the paper's §3.2, restricted to
    ordinary variables; channel histories live in
    {!Csp_trace.History}). *)

type t

val empty : t
val add : string -> Csp_trace.Value.t -> t -> t
val find_opt : string -> t -> Csp_trace.Value.t option
val mem : string -> t -> bool
val remove : string -> t -> t
val of_list : (string * Csp_trace.Value.t) list -> t
val bindings : t -> (string * Csp_trace.Value.t) list
val pp : Format.formatter -> t -> unit
