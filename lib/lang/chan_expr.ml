module Channel = Csp_trace.Channel

type t = { name : string; subs : Expr.t list }

let simple name = { name; subs = [] }
let indexed name e = { name; subs = [ e ] }

(* deep structural hash, consistent with structural equality *)
let hash c =
  List.fold_left
    (fun h e -> ((h * 31) + Expr.hash e) land max_int)
    (Hashtbl.hash c.name) c.subs

let eval rho c =
  Channel.make ~indices:(List.map (Expr.eval rho) c.subs) c.name

let eval_opt c =
  match eval Valuation.empty c with
  | chan -> Some chan
  | exception Expr.Eval_error _ -> None

let of_channel (c : Channel.t) =
  { name = c.name; subs = List.map (fun v -> Expr.Const v) c.indices }

let free_vars c =
  List.concat_map Expr.free_vars c.subs
  |> List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) []
  |> List.rev

let subst x r c = { c with subs = List.map (Expr.subst x r) c.subs }
let subst_value x v c = subst x (Expr.Const v) c
let is_closed c = List.for_all Expr.is_closed c.subs

let equal a b =
  String.equal a.name b.name
  && List.length a.subs = List.length b.subs
  && List.for_all2 Expr.equal a.subs b.subs

let pp ppf c =
  match c.subs with
  | [] -> Format.pp_print_string ppf c.name
  | subs ->
    Format.fprintf ppf "%s[%a]" c.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Expr.pp)
      subs
