module Value = Csp_trace.Value

type t =
  | Const of Value.t
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Idx of t * t
  | Tuple of t list

exception Eval_error of string

let int n = Const (Value.Int n)
let var x = Var x
let value v = Const v

(* Deep structural hash, consistent with structural equality.  Unlike
   [Hashtbl.hash] it traverses the whole term — memo tables keyed on
   large ASTs need hashes that see past the polymorphic hash's node
   cap, or structurally distinct terms collide en masse. *)
let hash_combine h k = ((h * 31) + k) land max_int

let rec hash = function
  | Const v -> hash_combine 1 (Value.hash v)
  | Var x -> hash_combine 2 (Hashtbl.hash x)
  | Neg e -> hash_combine 3 (hash e)
  | Add (a, b) -> hash2 4 a b
  | Sub (a, b) -> hash2 5 a b
  | Mul (a, b) -> hash2 6 a b
  | Div (a, b) -> hash2 7 a b
  | Mod (a, b) -> hash2 8 a b
  | Idx (a, b) -> hash2 9 a b
  | Tuple xs -> List.fold_left (fun h e -> hash_combine h (hash e)) 10 xs

and hash2 seed a b = hash_combine (hash_combine seed (hash a)) (hash b)
let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let as_int v =
  match Value.to_int v with
  | Some n -> n
  | None -> err "expected an integer, got %a" Value.pp v

let rec eval rho = function
  | Const v -> v
  | Var x -> (
    match Valuation.find_opt x rho with
    | Some v -> v
    | None -> err "unbound variable %s" x)
  | Neg e -> Value.Int (-as_int (eval rho e))
  | Add (a, b) -> arith rho ( + ) a b
  | Sub (a, b) -> arith rho ( - ) a b
  | Mul (a, b) -> arith rho ( * ) a b
  | Div (a, b) -> arith_nonzero rho ( / ) "division" a b
  | Mod (a, b) -> arith_nonzero rho (mod) "modulo" a b
  | Idx (s, i) -> (
    let sv = eval rho s and iv = as_int (eval rho i) in
    match sv with
    | Value.Seq xs -> (
      match Csp_trace.Seq_ops.index xs iv with
      | Some v -> v
      | None -> err "index %d out of range for %a" iv Value.pp sv)
    | _ -> err "indexing a non-sequence %a" Value.pp sv)
  | Tuple es -> Value.Tuple (List.map (eval rho) es)

and arith rho op a b = Value.Int (op (as_int (eval rho a)) (as_int (eval rho b)))

and arith_nonzero rho op what a b =
  let bv = as_int (eval rho b) in
  if bv = 0 then err "%s by zero" what
  else Value.Int (op (as_int (eval rho a)) bv)

let free_vars e =
  let add acc x = if List.mem x acc then acc else x :: acc in
  let rec go acc = function
    | Const _ -> acc
    | Var x -> add acc x
    | Neg a -> go acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Idx (a, b) ->
      go (go acc a) b
    | Tuple es -> List.fold_left go acc es
  in
  List.rev (go [] e)

let rec subst x r = function
  | Const _ as e -> e
  | Var y as e -> if String.equal x y then r else e
  | Neg a -> Neg (subst x r a)
  | Add (a, b) -> Add (subst x r a, subst x r b)
  | Sub (a, b) -> Sub (subst x r a, subst x r b)
  | Mul (a, b) -> Mul (subst x r a, subst x r b)
  | Div (a, b) -> Div (subst x r a, subst x r b)
  | Mod (a, b) -> Mod (subst x r a, subst x r b)
  | Idx (a, b) -> Idx (subst x r a, subst x r b)
  | Tuple es -> Tuple (List.map (subst x r) es)

let subst_value x v e = subst x (Const v) e
let is_closed e = free_vars e = []

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | Neg x, Neg y -> equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2)
  | Idx (a1, a2), Idx (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Tuple xs, Tuple ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Const _ | Var _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _
      | Idx _ | Tuple _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Neg a -> Format.fprintf ppf "-%a" pp_atom a
  | Add (a, b) -> Format.fprintf ppf "%a + %a" pp a pp_atom b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" pp a pp_atom b
  | Mul (a, b) -> Format.fprintf ppf "%a * %a" pp_atom a pp_atom b
  | Div (a, b) -> Format.fprintf ppf "%a / %a" pp_atom a pp_atom b
  | Mod (a, b) -> Format.fprintf ppf "%a mod %a" pp_atom a pp_atom b
  | Idx (a, b) -> Format.fprintf ppf "%a[%a]" pp_atom a pp b
  | Tuple es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp)
      es

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Tuple _ | Idx _ -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e
