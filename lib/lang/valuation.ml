module Value = Csp_trace.Value
module M = Map.Make (String)

type t = Value.t M.t

let empty = M.empty
let add = M.add
let find_opt = M.find_opt
let mem = M.mem
let remove = M.remove
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let bindings = M.bindings

let pp ppf m =
  let bind ppf (x, v) = Format.fprintf ppf "%s=%a" x Value.pp v in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       bind)
    (bindings m)
