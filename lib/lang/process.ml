type t =
  | Stop
  | Output of Chan_expr.t * Expr.t * t
  | Input of Chan_expr.t * string * Vset.t * t
  | Choice of t * t
  | Par of Chan_set.t * Chan_set.t * t * t
  | Hide of Chan_set.t * t
  | Ref of string * Expr.t option

let stop = Stop
let send c e p = Output (Chan_expr.simple c, e, p)
let recv c x m p = Input (Chan_expr.simple c, x, m, p)

let choice = function
  | [] -> invalid_arg "Process.choice: empty alternative"
  | p :: rest -> List.fold_left (fun acc q -> Choice (acc, q)) p rest

let ref_ name = Ref (name, None)
let call name e = Ref (name, Some e)

(* Deep structural hash, consistent with [Stdlib.( = )].  State-space
   interning (Lts, Step.traces) keys hash tables on whole process
   terms; network states differ only in an inner continuation, beyond
   the polymorphic hash's 256-node cap, so [Hashtbl.hash] would put
   thousands of states in one bucket. *)
let hash_combine h k = ((h * 31) + k) land max_int

let rec hash = function
  | Stop -> 1
  | Output (c, e, k) ->
    hash_combine (hash_combine (hash_combine 2 (Chan_expr.hash c)) (Expr.hash e)) (hash k)
  | Input (c, x, m, k) ->
    hash_combine
      (hash_combine
         (hash_combine (hash_combine 3 (Chan_expr.hash c)) (Hashtbl.hash x))
         (Vset.hash m))
      (hash k)
  | Choice (p, q) -> hash_combine (hash_combine 4 (hash p)) (hash q)
  | Par (xa, ya, p, q) ->
    hash_combine
      (hash_combine
         (hash_combine (hash_combine 5 (Chan_set.hash xa)) (Chan_set.hash ya))
         (hash p))
      (hash q)
  | Hide (l, p) -> hash_combine (hash_combine 6 (Chan_set.hash l)) (hash p)
  | Ref (n, arg) ->
    hash_combine
      (hash_combine 7 (Hashtbl.hash n))
      (match arg with None -> 0 | Some e -> Expr.hash e)

let subst_chan_set x r cs =
  List.map
    (function
      | Chan_set.Chan ce -> Chan_set.Chan (Chan_expr.subst x r ce)
      | (Chan_set.Family _ | Chan_set.Base _) as i -> i)
    cs

let rec subst_expr x r = function
  | Stop -> Stop
  | Output (c, e, p) ->
    Output (Chan_expr.subst x r c, Expr.subst x r e, subst_expr x r p)
  | Input (c, y, m, p) ->
    let c = Chan_expr.subst x r c in
    if String.equal x y then Input (c, y, m, p)
    else Input (c, y, m, subst_expr x r p)
  | Choice (p, q) -> Choice (subst_expr x r p, subst_expr x r q)
  | Par (xa, ya, p, q) ->
    Par (subst_chan_set x r xa, subst_chan_set x r ya, subst_expr x r p,
         subst_expr x r q)
  | Hide (l, p) -> Hide (subst_chan_set x r l, subst_expr x r p)
  | Ref (n, arg) -> Ref (n, Option.map (Expr.subst x r) arg)

let subst_value x v p = subst_expr x (Expr.Const v) p

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let free_vars p =
  let rec go bound acc = function
    | Stop -> acc
    | Output (c, e, p) ->
      let acc = acc @ Chan_expr.free_vars c @ Expr.free_vars e in
      go bound (List.filter (fun v -> not (List.mem v bound)) acc) p
    | Input (c, x, _, p) ->
      let acc = acc @ List.filter (fun v -> not (List.mem v bound)) (Chan_expr.free_vars c) in
      go (x :: bound) acc p
    | Choice (p, q) -> go bound (go bound acc p) q
    | Par (xa, ya, p, q) ->
      let here = Chan_set.free_vars xa @ Chan_set.free_vars ya in
      let acc = acc @ List.filter (fun v -> not (List.mem v bound)) here in
      go bound (go bound acc p) q
    | Hide (l, p) ->
      let here = Chan_set.free_vars l in
      let acc = acc @ List.filter (fun v -> not (List.mem v bound)) here in
      go bound acc p
    | Ref (_, arg) -> (
      match arg with
      | None -> acc
      | Some e ->
        acc @ List.filter (fun v -> not (List.mem v bound)) (Expr.free_vars e))
  in
  dedup (go [] [] p)

let refs p =
  let rec go acc = function
    | Stop -> acc
    | Output (_, _, p) | Input (_, _, _, p) | Hide (_, p) -> go acc p
    | Choice (p, q) | Par (_, _, p, q) -> go (go acc p) q
    | Ref (n, _) -> acc @ [ n ]
  in
  dedup (go [] p)

let channel_bases p =
  let rec go acc = function
    | Stop | Ref _ -> acc
    | Output (c, _, p) | Input (c, _, _, p) -> go (acc @ [ c.Chan_expr.name ]) p
    | Choice (p, q) | Par (_, _, p, q) -> go (go acc p) q
    | Hide (_, p) -> go acc p
  in
  dedup (go [] p)

let rec size = function
  | Stop | Ref _ -> 1
  | Output (_, _, p) | Input (_, _, _, p) | Hide (_, p) -> 1 + size p
  | Choice (p, q) | Par (_, _, p, q) -> 1 + size p + size q

let rec equal a b =
  match a, b with
  | Stop, Stop -> true
  | Output (c1, e1, p1), Output (c2, e2, p2) ->
    Chan_expr.equal c1 c2 && Expr.equal e1 e2 && equal p1 p2
  | Input (c1, x1, m1, p1), Input (c2, x2, m2, p2) ->
    Chan_expr.equal c1 c2 && String.equal x1 x2 && Vset.equal m1 m2
    && equal p1 p2
  | Choice (p1, q1), Choice (p2, q2) -> equal p1 p2 && equal q1 q2
  | Par (xa1, ya1, p1, q1), Par (xa2, ya2, p2, q2) ->
    Chan_set.equal xa1 xa2 && Chan_set.equal ya1 ya2 && equal p1 p2
    && equal q1 q2
  | Hide (l1, p1), Hide (l2, p2) -> Chan_set.equal l1 l2 && equal p1 p2
  | Ref (n1, a1), Ref (n2, a2) -> (
    String.equal n1 n2
    &&
    match a1, a2 with
    | None, None -> true
    | Some e1, Some e2 -> Expr.equal e1 e2
    | _ -> false)
  | (Stop | Output _ | Input _ | Choice _ | Par _ | Hide _ | Ref _), _ -> false

let rec pp ppf = function
  | Stop -> Format.pp_print_string ppf "STOP"
  | Output (c, e, p) ->
    Format.fprintf ppf "%a!%a -> %a" Chan_expr.pp c Expr.pp e pp_prefix p
  | Input (c, x, m, p) ->
    Format.fprintf ppf "%a?%s:%a -> %a" Chan_expr.pp c x Vset.pp m pp_prefix p
  | Choice (p, q) -> Format.fprintf ppf "%a | %a" pp_prefix p pp_prefix q
  | Par (_, _, p, q) -> Format.fprintf ppf "(%a || %a)" pp p pp q
  | Hide (l, p) -> Format.fprintf ppf "(chan %a; %a)" Chan_set.pp l pp p
  | Ref (n, None) -> Format.pp_print_string ppf n
  | Ref (n, Some e) -> Format.fprintf ppf "%s[%a]" n Expr.pp e

and pp_prefix ppf p =
  match p with
  | Choice _ -> Format.fprintf ppf "(%a)" pp p
  | _ -> pp ppf p

let to_string p = Format.asprintf "%a" pp p
