module Channel = Csp_trace.Channel

type item =
  | Chan of Chan_expr.t
  | Family of string * Vset.t
  | Base of string

type t = item list

let empty = []

(* deep structural hash, consistent with structural equality *)
let hash_item = function
  | Chan c -> ((1 * 31) + Chan_expr.hash c) land max_int
  | Family (n, m) ->
    ((((2 * 31) + Hashtbl.hash n) * 31) + Vset.hash m) land max_int
  | Base n -> ((3 * 31) + Hashtbl.hash n) land max_int

let hash cs =
  List.fold_left (fun h i -> ((h * 31) + hash_item i) land max_int) 17 cs

let item_equal a b =
  match a, b with
  | Chan c1, Chan c2 -> Chan_expr.equal c1 c2
  | Family (n1, m1), Family (n2, m2) -> String.equal n1 n2 && Vset.equal m1 m2
  | Base n1, Base n2 -> String.equal n1 n2
  | (Chan _ | Family _ | Base _), _ -> false

let equal a b = List.length a = List.length b && List.for_all2 item_equal a b
let of_channels cs = List.map (fun c -> Chan (Chan_expr.of_channel c)) cs
let of_names ns = List.map (fun n -> Chan (Chan_expr.simple n)) ns
let bases ns = List.map (fun n -> Base n) ns
let family name m = Family (name, m)

let item_mem rho item (c : Channel.t) =
  match item with
  | Base n -> String.equal n c.name
  | Family (n, m) -> (
    String.equal n c.name
    && match c.indices with [ v ] -> Vset.mem m v | _ -> false)
  | Chan ce -> (
    String.equal ce.name c.name
    &&
    match Chan_expr.eval rho ce with
    | c' -> Channel.equal c' c
    | exception Expr.Eval_error _ ->
      (* Unevaluable subscripts: match conservatively on the base name so
         alphabets cover at least what the text mentions. *)
      true)

let mem ?(rho = Valuation.empty) cs c = List.exists (fun i -> item_mem rho i c) cs
let union a b = a @ b

let base_names cs =
  let name = function Chan ce -> ce.Chan_expr.name | Family (n, _) | Base n -> n in
  List.fold_left
    (fun acc i ->
      let n = name i in
      if List.mem n acc then acc else acc @ [ n ])
    [] cs

let subst_value x v cs =
  List.map
    (function
      | Chan ce -> Chan (Chan_expr.subst_value x v ce)
      | (Family _ | Base _) as i -> i)
    cs

let free_vars cs =
  List.concat_map
    (function Chan ce -> Chan_expr.free_vars ce | Family _ | Base _ -> [])
    cs

let pp_item ppf = function
  | Chan ce -> Chan_expr.pp ppf ce
  | Family (n, m) -> Format.fprintf ppf "%s[%a]" n Vset.pp m
  | Base n -> Format.fprintf ppf "%s[*]" n

let pp ppf cs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_item)
    cs
