(** Process expressions — the abstract syntax of the paper's §1.2.

    Constructors follow the paper exactly: [Stop] never communicates;
    [Output (c, e, p)] is [c!e → p]; [Input (c, x, m, p)] is
    [c?x:M → p] and binds [x] in [p]; [Choice] is the non-deterministic
    alternative [P | Q]; [Par (x, y, p, q)] is the alphabetised parallel
    [P ‖_{X∩Y} Q]; [Hide (l, p)] is [chan L; P]; [Ref (p, None)] is a
    process name and [Ref (q, Some e)] a subscripted process name
    [q[e]]. *)

type t =
  | Stop
  | Output of Chan_expr.t * Expr.t * t
  | Input of Chan_expr.t * string * Vset.t * t
  | Choice of t * t
  | Par of Chan_set.t * Chan_set.t * t * t
  | Hide of Chan_set.t * t
  | Ref of string * Expr.t option

val stop : t
val send : string -> Expr.t -> t -> t
(** [send c e p] is [c!e → p] on the unsubscripted channel [c]. *)

val recv : string -> string -> Vset.t -> t -> t
(** [recv c x m p] is [c?x:M → p] on the unsubscripted channel [c]. *)

val choice : t list -> t
(** Right-nested alternative of one or more processes.
    @raise Invalid_argument on the empty list. *)

val ref_ : string -> t
val call : string -> Expr.t -> t

val subst_value : string -> Csp_trace.Value.t -> t -> t
(** Capture-avoiding substitution of a value for a free variable;
    [Input] rebinding stops the descent. *)

val subst_expr : string -> Expr.t -> t -> t
(** Substitution of an arbitrary expression for a free variable (the
    paper's [P^x_v] with [v] a fresh variable, used by the input and
    recursion rules). *)

val free_vars : t -> string list
(** Free (value) variables, in first-occurrence order. *)

val refs : t -> string list
(** Process names referenced, deduplicated. *)

val channel_bases : t -> string list
(** Base names of channels textually used for communication in [t]
    (not following process references; see {!Defs.channel_bases}). *)

val size : t -> int
(** Number of AST constructors — used for fuel accounting in tests. *)

val equal : t -> t -> bool
(** Structural equality, including the channel-set annotations of
    [Par] and [Hide] — consistent with {!hash}, so either can key a
    table.  This is the equality {!Proc.intern} canonicalises: two
    terms intern to the same node exactly when they are [equal]. *)

val hash : t -> int
(** Deep structural hash, consistent with [Stdlib.( = )] on process
    terms (no node-count cap, unlike [Hashtbl.hash]); used to intern
    states when exploring large networks. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
