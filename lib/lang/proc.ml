(* Hash-consed process IR (the process-side analogue of the closure
   kernel's unique table).

   Every node is interned in a global weak unique table, so structurally
   equal process terms — in the sense of [Process.equal] — are
   *physically* equal.  Consequences exploited by the semantic
   pipelines:

   - [equal] is pointer equality (O(1)), [hash]/[id] are precomputed
     per node (O(1));
   - state-keyed memo tables (derivatives, LTS exploration, partition
     refinement, denotational approximation) key on node ids instead of
     rehashing deep terms on every probe;
   - rebuilding a network state that differs only in one inner
     continuation (the common case for [Par] spines) interns each fresh
     spine node in O(1) — children are already interned, so the shallow
     hash combines their ids with the small leaf components;
   - every node carries its [Process.t] view, built incrementally from
     the children's views, so projecting back to the plain AST is a
     field read and shares subterms maximally.

   Node ids are allocated from a monotonic counter and never reused.
   The unique table is weak: nodes unreachable from the program may be
   collected and later re-interned under a fresh id. *)

type t = { id : int; hkey : int; node : node; repr : Process.t }

and node =
  | Stop
  | Output of Chan_expr.t * Expr.t * t
  | Input of Chan_expr.t * string * Vset.t * t
  | Choice of t * t
  | Par of Chan_set.t * Chan_set.t * t * t
  | Hide of Chan_set.t * t
  | Ref of string * Expr.t option

let id t = t.id
let hash t = t.hkey
let node t = t.node
let equal a b = a == b
let compare a b = Int.compare a.id b.id
let to_process t = t.repr

(* Shallow equality: children by pointer, leaf components by the same
   structural equalities [Process.equal] uses — so interning
   canonicalises exactly [Process.equal]. *)
let node_equal a b =
  match a, b with
  | Stop, Stop -> true
  | Output (c1, e1, k1), Output (c2, e2, k2) ->
    k1 == k2 && Chan_expr.equal c1 c2 && Expr.equal e1 e2
  | Input (c1, x1, m1, k1), Input (c2, x2, m2, k2) ->
    k1 == k2 && String.equal x1 x2 && Chan_expr.equal c1 c2 && Vset.equal m1 m2
  | Choice (p1, q1), Choice (p2, q2) -> p1 == p2 && q1 == q2
  | Par (xa1, ya1, p1, q1), Par (xa2, ya2, p2, q2) ->
    p1 == p2 && q1 == q2 && Chan_set.equal xa1 xa2 && Chan_set.equal ya1 ya2
  | Hide (l1, p1), Hide (l2, p2) -> p1 == p2 && Chan_set.equal l1 l2
  | Ref (n1, a1), Ref (n2, a2) ->
    String.equal n1 n2 && Option.equal Expr.equal a1 a2
  | (Stop | Output _ | Input _ | Choice _ | Par _ | Hide _ | Ref _), _ -> false

let comb h k = ((h * 31) + k) land max_int

let node_hash = function
  | Stop -> 1
  | Output (c, e, k) ->
    comb (comb (comb 2 (Chan_expr.hash c)) (Expr.hash e)) k.id
  | Input (c, x, m, k) ->
    comb
      (comb (comb (comb 3 (Chan_expr.hash c)) (Hashtbl.hash x)) (Vset.hash m))
      k.id
  | Choice (p, q) -> comb (comb 4 p.id) q.id
  | Par (xa, ya, p, q) ->
    comb (comb (comb (comb 5 (Chan_set.hash xa)) (Chan_set.hash ya)) p.id) q.id
  | Hide (l, p) -> comb (comb 6 (Chan_set.hash l)) p.id
  | Ref (n, a) ->
    comb
      (comb 7 (Hashtbl.hash n))
      (match a with None -> 0 | Some e -> Expr.hash e)

module Unique = Weak.Make (struct
  type nonrec t = t

  let equal a b = node_equal a.node b.node
  let hash a = a.hkey
end)

(* The unique table is sharded by hash: each shard carries its own
   weak table and its own mutex, so interning on one domain contends
   only with interning of same-shard nodes on another — not with the
   whole table.  The critical section per shard is a single hash
   lookup / insert; recursive descent happens outside.  Shard count is
   a power of two so selection is a mask on the precomputed hash. *)
let n_shards = 16
let shard_mask = n_shards - 1

type shard = {
  s_lock : Mutex.t;
  s_table : Unique.t;
  s_waits : int Atomic.t;  (* contended acquisitions of [s_lock] *)
  mutable s_misses : int;  (* inserts that created a node, under lock *)
}

let shards =
  Array.init n_shards (fun _ ->
      {
        s_lock = Mutex.create ();
        s_table = Unique.create 512;
        s_waits = Atomic.make 0;
        s_misses = 0;
      })

let[@inline] shard_of hkey = shards.(hkey land shard_mask)

let[@inline] locked sh f =
  if not (Mutex.try_lock sh.s_lock) then begin
    Atomic.incr sh.s_waits;
    Mutex.lock sh.s_lock
  end;
  match f () with
  | v ->
    Mutex.unlock sh.s_lock;
    v
  | exception e ->
    Mutex.unlock sh.s_lock;
    raise e

(* Ids come from one atomic counter across all shards, so they stay
   globally unique (and, in sequential runs, dense in creation order).
   Hits are counted outside the locks (see the fast path in [mk]). *)
let next_id = Atomic.make 0
let intern_hits = Atomic.make 0

type shard_stats = { shard_len : int; shard_waits : int; shard_misses : int }

type stats = {
  nodes : int;
  hits : int;
  misses : int;
  table_len : int;
  lock_waits : int;
  shards : int;
  max_shard_len : int;
}

let shard_stats () =
  Array.map
    (fun sh ->
      locked sh (fun () ->
          {
            shard_len = Unique.count sh.s_table;
            shard_waits = Atomic.get sh.s_waits;
            shard_misses = sh.s_misses;
          }))
    shards

let stats () =
  let per = shard_stats () in
  let misses = Array.fold_left (fun a s -> a + s.shard_misses) 0 per in
  {
    nodes = misses;
    hits = Atomic.get intern_hits;
    misses;
    table_len = Array.fold_left (fun a s -> a + s.shard_len) 0 per;
    lock_waits = Array.fold_left (fun a s -> a + s.shard_waits) 0 per;
    shards = n_shards;
    max_shard_len = Array.fold_left (fun a s -> max a s.shard_len) 0 per;
  }

(* [repr] must be structurally equal to the node's unfolding; callers
   below either pass the original term being interned or rebuild the
   view in O(1) from the children's views.

   The table is read-mostly (BENCH_parallel records ~10M hits per
   exploration against thousands of misses), so the hit path probes
   without the lock: published nodes are only ever inserted under the
   lock and [node_equal] compares children by pointer, so a positive
   probe can only return the canonical node.  A concurrent insert may
   resize the weak buckets under the probe — any exception (or a
   spurious miss) falls through to the locked path, which re-checks
   under mutual exclusion before publishing. *)
let mk node repr =
  let hkey = node_hash node in
  let sh = shard_of hkey in
  let slow () =
    locked sh (fun () ->
        let probe = { id = -1; hkey; node; repr } in
        match Unique.find_opt sh.s_table probe with
        | Some interned ->
          Atomic.incr intern_hits;
          interned
        | None ->
          let candidate =
            { id = Atomic.fetch_and_add next_id 1; hkey; node; repr }
          in
          Unique.add sh.s_table candidate;
          sh.s_misses <- sh.s_misses + 1;
          candidate)
  in
  match Unique.find_opt sh.s_table { id = -1; hkey; node; repr } with
  | Some interned ->
    Atomic.incr intern_hits;
    interned
  | None -> slow ()
  | exception _ -> slow ()

let stop = mk Stop Process.Stop

let output c e k = mk (Output (c, e, k)) (Process.Output (c, e, k.repr))
let input c x m k = mk (Input (c, x, m, k)) (Process.Input (c, x, m, k.repr))
let choice p q = mk (Choice (p, q)) (Process.Choice (p.repr, q.repr))

let par xa ya p q =
  mk (Par (xa, ya, p, q)) (Process.Par (xa, ya, p.repr, q.repr))

let hide l p = mk (Hide (l, p)) (Process.Hide (l, p.repr))
let ref_ n arg = mk (Ref (n, arg)) (Process.Ref (n, arg))

let rec intern (p : Process.t) =
  match p with
  | Process.Stop -> stop
  | Process.Output (c, e, k) -> mk (Output (c, e, intern k)) p
  | Process.Input (c, x, m, k) -> mk (Input (c, x, m, intern k)) p
  | Process.Choice (a, b) -> mk (Choice (intern a, intern b)) p
  | Process.Par (xa, ya, a, b) -> mk (Par (xa, ya, intern a, intern b)) p
  | Process.Hide (l, a) -> mk (Hide (l, intern a)) p
  | Process.Ref (n, arg) -> mk (Ref (n, arg)) p

(* Substitution mirrors [Process.subst_value]: [Input] rebinding stops
   the descent; channel-set items substitute through [Chan] items only.
   No memo: the same physical subterm may sit both under and outside a
   shadowing binder, so a key on the node id alone would be unsound. *)
let rec subst_value x v t =
  match t.node with
  | Stop -> t
  | Output (c, e, k) ->
    output (Chan_expr.subst_value x v c) (Expr.subst_value x v e)
      (subst_value x v k)
  | Input (c, y, m, k) ->
    let c = Chan_expr.subst_value x v c in
    if String.equal x y then input c y m k else input c y m (subst_value x v k)
  | Choice (p, q) -> choice (subst_value x v p) (subst_value x v q)
  | Par (xa, ya, p, q) ->
    par
      (Chan_set.subst_value x v xa)
      (Chan_set.subst_value x v ya)
      (subst_value x v p) (subst_value x v q)
  | Hide (l, p) -> hide (Chan_set.subst_value x v l) (subst_value x v p)
  | Ref (n, arg) -> ref_ n (Option.map (Expr.subst_value x v) arg)

let pp ppf t = Process.pp ppf t.repr
let to_string t = Process.to_string t.repr
