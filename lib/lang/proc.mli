(** Hash-consed process IR — the process-side analogue of the closure
    kernel's unique table.

    Interning canonicalises {!Process.equal}: two process terms intern
    to the same (physically equal) node exactly when they are equal, so
    {!equal} is pointer comparison and {!hash}/{!id} are precomputed
    field reads.  Semantic pipelines key their state tables on {!id}
    instead of rehashing deep terms, and rebuild successor states with
    the smart constructors, which intern in O(1) given interned
    children.

    Node ids are allocated monotonically and never reused.  The unique
    table holds nodes weakly: an unreachable node may be collected and
    a later re-interning of the same term yields a fresh id — ids are
    stable for as long as the node is held alive (e.g. by a memo table
    mapping [id → ...] whose entries keep the node reachable, or by the
    states of an {!Lts.t}). *)

type t
(** An interned process node.  Abstract: obtain one via {!intern} or
    the smart constructors, never by direct construction. *)

type node =
  | Stop
  | Output of Chan_expr.t * Expr.t * t
  | Input of Chan_expr.t * string * Vset.t * t
  | Choice of t * t
  | Par of Chan_set.t * Chan_set.t * t * t
  | Hide of Chan_set.t * t
  | Ref of string * Expr.t option
      (** One-level view: constructors mirror {!Process.t} with interned
          children. *)

val node : t -> node
(** One-level pattern-matching view of the node. *)

val id : t -> int
(** Unique id, O(1).  Distinct live nodes have distinct ids. *)

val hash : t -> int
(** Precomputed structural hash, O(1); equal nodes hash equally. *)

val equal : t -> t -> bool
(** Pointer equality — sound and complete for structural equality
    thanks to interning. *)

val compare : t -> t -> int
(** Total order by {!id} (arbitrary but fixed while nodes are live). *)

val intern : Process.t -> t
(** Bottom-up interning of a plain AST.  [intern p == intern q] iff
    [Process.equal p q]. *)

val to_process : t -> Process.t
(** The plain-AST view, O(1): every node carries its [Process.t]
    representation, built incrementally with maximal sharing. *)

(** {1 Smart constructors} — intern in O(1) given interned children. *)

val stop : t
val output : Chan_expr.t -> Expr.t -> t -> t
val input : Chan_expr.t -> string -> Vset.t -> t -> t
val choice : t -> t -> t
val par : Chan_set.t -> Chan_set.t -> t -> t -> t
val hide : Chan_set.t -> t -> t
val ref_ : string -> Expr.t option -> t

val subst_value : string -> Csp_trace.Value.t -> t -> t
(** Substitution of a value for a free variable, mirroring
    {!Process.subst_value}: [Input] rebinding stops the descent. *)

type shard_stats = {
  shard_len : int;  (** live nodes in this shard's weak table *)
  shard_waits : int;  (** contended acquisitions of this shard's mutex *)
  shard_misses : int;  (** nodes created through this shard *)
}

type stats = {
  nodes : int;
  hits : int;
  misses : int;
  table_len : int;
  lock_waits : int;
      (** contended shard-mutex acquisitions, summed over shards (only
          ever non-zero when several domains intern concurrently; the
          hit path probes the shard without its lock, so only misses
          and probe races contend) *)
  shards : int;  (** shard count of the unique table *)
  max_shard_len : int;
      (** live nodes in the fullest shard — an occupancy-skew check:
          healthy hashing keeps this near [table_len / shards] *)
}

val stats : unit -> stats
(** Interning statistics since program start: nodes created, unique-
    table hits/misses, current live table size, and lock contention.
    The unique table is sharded by hash with one mutex per shard, so
    concurrent interning contends per shard, not globally. *)

val shard_stats : unit -> shard_stats array
(** Per-shard occupancy and contention, in shard order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
