module Value = Csp_trace.Value

type mutant = {
  description : string;
  operator : [ `Value | `Channel | `Branch | `Truncate ];
  body : Process.t;
}

(* Enumerate the results of applying [f] at every node of [p]; [f]
   returns the list of replacements for the node it is given.  Each
   element of the result differs from [p] at exactly one node. *)
let rec at_each_node f p =
  let here = f p in
  let deeper =
    match p with
    | Process.Stop | Process.Ref _ -> []
    | Process.Output (c, e, k) ->
      List.map (fun k' -> Process.Output (c, e, k')) (at_each_node f k)
    | Process.Input (c, x, m, k) ->
      List.map (fun k' -> Process.Input (c, x, m, k')) (at_each_node f k)
    | Process.Choice (a, b) ->
      List.map (fun a' -> Process.Choice (a', b)) (at_each_node f a)
      @ List.map (fun b' -> Process.Choice (a, b')) (at_each_node f b)
    | Process.Par (xa, ya, a, b) ->
      List.map (fun a' -> Process.Par (xa, ya, a', b)) (at_each_node f a)
      @ List.map (fun b' -> Process.Par (xa, ya, a, b')) (at_each_node f b)
    | Process.Hide (l, a) ->
      List.map (fun a' -> Process.Hide (l, a')) (at_each_node f a)
  in
  here @ deeper

let other_bases p (c : Chan_expr.t) =
  List.filter (fun n -> n <> c.Chan_expr.name) (Process.channel_bases p)

let mutants p =
  let value_mutants =
    at_each_node
      (function
        | Process.Output (c, Expr.Const (Value.Int n), k) ->
          [ Process.Output (c, Expr.Const (Value.Int (n + 1)), k) ]
        | Process.Output (c, Expr.Var x, k) ->
          [ Process.Output (c, Expr.Add (Expr.Var x, Expr.int 1), k) ]
        | _ -> [])
      p
    |> List.map (fun body ->
           { description = "value+1 in an output"; operator = `Value; body })
  in
  let channel_mutants =
    at_each_node
      (function
        | Process.Output (c, e, k) ->
          List.map
            (fun n -> Process.Output ({ c with Chan_expr.name = n }, e, k))
            (other_bases p c)
        | Process.Input (c, x, m, k) ->
          List.map
            (fun n -> Process.Input ({ c with Chan_expr.name = n }, x, m, k))
            (other_bases p c)
        | _ -> [])
      p
    |> List.map (fun body ->
           { description = "communication moved to another channel";
             operator = `Channel; body })
  in
  let branch_mutants =
    at_each_node
      (function Process.Choice (a, b) -> [ a; b ] | _ -> [])
      p
    |> List.map (fun body ->
           { description = "one alternative dropped"; operator = `Branch; body })
  in
  let truncate_mutants =
    at_each_node
      (function
        | Process.Output (c, e, k) when k <> Process.Stop ->
          [ Process.Output (c, e, Process.Stop) ]
        | Process.Input (c, x, m, k) when k <> Process.Stop ->
          [ Process.Input (c, x, m, Process.Stop) ]
        | _ -> [])
      p
    |> List.map (fun body ->
           { description = "continuation truncated to STOP";
             operator = `Truncate; body })
  in
  List.filter
    (fun m -> not (Process.equal m.body p))
    (value_mutants @ channel_mutants @ branch_mutants @ truncate_mutants)

let mutate_def defs name =
  match Defs.lookup defs name with
  | None -> []
  | Some d ->
    List.map
      (fun m ->
        let description = Printf.sprintf "%s: %s" name m.description in
        ({ m with description }, Defs.add { d with Defs.body = m.body } defs))
      (mutants d.Defs.body)
