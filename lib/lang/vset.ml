module Value = Csp_trace.Value

type t =
  | Nat
  | Range of int * int
  | Enum of Value.t list
  | Union of t * t
  | Bools

(* deep structural hash, consistent with structural equality *)
let rec hash = function
  | Nat -> 11
  | Bools -> 12
  | Range (lo, hi) -> ((((13 * 31) + lo) * 31) + hi) land max_int
  | Enum vs ->
    List.fold_left (fun h v -> ((h * 31) + Value.hash v) land max_int) 14 vs
  | Union (a, b) -> ((((15 * 31) + hash a) * 31) + hash b) land max_int

let rec mem m (v : Value.t) =
  match m, v with
  | Nat, Value.Int n -> n >= 0
  | Nat, _ -> false
  | Range (lo, hi), Value.Int n -> lo <= n && n <= hi
  | Range _, _ -> false
  | Enum vs, _ -> List.exists (Value.equal v) vs
  | Union (a, b), _ -> mem a v || mem b v
  | Bools, Value.Bool _ -> true
  | Bools, _ -> false

let rec is_finite = function
  | Nat -> false
  | Range _ | Enum _ | Bools -> true
  | Union (a, b) -> is_finite a && is_finite b

let dedup vs =
  List.rev
    (List.fold_left
       (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc)
       [] vs)

let range_list lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (Value.Int i :: acc) in
  go hi []

let rec enumerate = function
  | Nat -> None
  | Range (lo, hi) -> Some (range_list lo hi)
  | Enum vs -> Some (dedup vs)
  | Bools -> Some [ Value.Bool false; Value.Bool true ]
  | Union (a, b) -> (
    match enumerate a, enumerate b with
    | Some xs, Some ys -> Some (dedup (xs @ ys))
    | _ -> None)

let rec enumerate_bounded ~bound = function
  | Nat -> range_list 0 (bound - 1)
  | Union (a, b) ->
    dedup (enumerate_bounded ~bound a @ enumerate_bounded ~bound b)
  | m -> ( match enumerate m with Some vs -> vs | None -> assert false)

let signals names = Enum (List.map (fun s -> Value.Sym s) names)

let rec equal a b =
  match a, b with
  | Nat, Nat | Bools, Bools -> true
  | Range (a1, a2), Range (b1, b2) -> a1 = b1 && a2 = b2
  | Enum xs, Enum ys ->
    List.length xs = List.length ys && List.for_all2 Value.equal xs ys
  | Union (a1, a2), Union (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Nat | Range _ | Enum _ | Union _ | Bools), _ -> false

let rec pp ppf = function
  | Nat -> Format.pp_print_string ppf "NAT"
  | Bools -> Format.pp_print_string ppf "BOOL"
  | Range (lo, hi) -> Format.fprintf ppf "{%d..%d}" lo hi
  | Enum vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Value.pp)
      vs
  | Union (a, b) -> Format.fprintf ppf "%a ∪ %a" pp a pp b
