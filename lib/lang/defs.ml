module Value = Csp_trace.Value
module M = Map.Make (String)

type def = {
  name : string;
  param : (string * Vset.t) option;
  body : Process.t;
}

type t = def M.t

let empty = M.empty
let add d defs = M.add d.name d defs
let define name body defs = add { name; param = None; body } defs

let define_array name x m body defs =
  add { name; param = Some (x, m); body } defs

let of_list ds = List.fold_left (fun acc d -> add d acc) empty ds
let lookup defs name = M.find_opt name defs
let names defs = List.map fst (M.bindings defs)

exception Undefined of string
exception Bad_argument of string

let unfold defs name arg =
  match lookup defs name with
  | None -> raise (Undefined name)
  | Some d -> (
    match d.param, arg with
    | None, None -> d.body
    | None, Some _ ->
      raise (Bad_argument (name ^ " is not a process array"))
    | Some _, None ->
      raise (Bad_argument (name ^ " is a process array and needs a subscript"))
    | Some (x, m), Some v ->
      if not (Vset.mem m v) then
        raise
          (Bad_argument
             (Format.asprintf "%s[%a]: subscript outside %a" name Value.pp v
                Vset.pp m));
      Process.subst_value x v d.body)

let unfold_ref defs rho name arg_expr =
  unfold defs name (Option.map (Expr.eval rho) arg_expr)

let channel_bases defs p =
  let dedup_add acc x = if List.mem x acc then acc else acc @ [ x ] in
  let visited = Hashtbl.create 8 in
  let rec go acc p =
    let acc = List.fold_left dedup_add acc (Process.channel_bases p) in
    List.fold_left
      (fun acc n ->
        if Hashtbl.mem visited n then acc
        else begin
          Hashtbl.add visited n ();
          match lookup defs n with None -> acc | Some d -> go acc d.body
        end)
      acc (Process.refs p)
  in
  go [] p

(* A definition is productive when every reference reachable from its body
   without passing a communication prefix leads only into productive
   definitions — i.e. the "unguarded reference" graph is acyclic. *)
let well_guarded defs =
  let rec unguarded_refs acc = function
    | Process.Stop | Process.Output _ | Process.Input _ -> acc
    | Process.Choice (p, q) | Process.Par (_, _, p, q) ->
      unguarded_refs (unguarded_refs acc p) q
    | Process.Hide (_, p) -> unguarded_refs acc p
    | Process.Ref (n, _) -> if List.mem n acc then acc else acc @ [ n ]
  in
  let edges name =
    match lookup defs name with
    | None -> []
    | Some d -> unguarded_refs [] d.body
  in
  (* Detect a cycle in the unguarded-reference graph by DFS. *)
  let state = Hashtbl.create 8 in
  (* state: 1 = in progress, 2 = done *)
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some 2 -> Ok ()
    | Some _ -> Error (n ^ " has an unguarded recursive reference")
    | None ->
      Hashtbl.replace state n 1;
      let rec loop = function
        | [] ->
          Hashtbl.replace state n 2;
          Ok ()
        | m :: rest -> ( match visit m with Ok () -> loop rest | e -> e)
      in
      loop (edges n)
  in
  let rec all = function
    | [] -> Ok ()
    | n :: rest -> ( match visit n with Ok () -> all rest | e -> e)
  in
  all (names defs)

let pp ppf defs =
  let pp_def ppf d =
    match d.param with
    | None -> Format.fprintf ppf "%s = %a" d.name Process.pp d.body
    | Some (x, m) ->
      Format.fprintf ppf "%s[%s:%a] = %a" d.name x Vset.pp m Process.pp d.body
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    pp_def ppf
    (List.map snd (M.bindings defs))
