(** Value expressions of the process language.

    Expressions are built from constants, variables and operators; the
    paper stipulates that they contain no process or channel names.
    [Idx] is 1-based sequence indexing, used for constant vectors such as
    the multiplier's [v[i]]. *)

type t =
  | Const of Csp_trace.Value.t
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Idx of t * t        (** [Idx (s, i)]: the i-th element (1-based) of sequence s *)
  | Tuple of t list

exception Eval_error of string

val int : int -> t
val var : string -> t
val value : Csp_trace.Value.t -> t

val eval : Valuation.t -> t -> Csp_trace.Value.t
(** Evaluate a closed-under-[valuation] expression.
    @raise Eval_error on unbound variables or type mismatches. *)

val free_vars : t -> string list
(** Free variables, each listed once, in first-occurrence order. *)

val subst : string -> t -> t -> t
(** [subst x r e] replaces every occurrence of [Var x] in [e] by [r]. *)

val subst_value : string -> Csp_trace.Value.t -> t -> t

val is_closed : t -> bool
val equal : t -> t -> bool

val hash : t -> int
(** Deep structural hash, consistent with structural equality (no
    node-count cap, unlike [Hashtbl.hash]). *)

val pp : Format.formatter -> t -> unit
