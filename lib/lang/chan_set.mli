(** Channel sets: the alphabets [X], [Y] of parallel composition and the
    lists [L] of locally-declared channels in [chan L; P].

    A set is a list of items; an item matches either one concrete
    channel, every channel in a subscript family ([col[0..3]]), or every
    channel sharing a base name (used when alphabets are inferred from
    the text of a process, where subscripts may not be closed). *)

type item =
  | Chan of Chan_expr.t        (** a single channel, e.g. [wire] or [col[i]] *)
  | Family of string * Vset.t  (** [name[M]]: every [name[v]] with v ∈ M *)
  | Base of string             (** every channel whose base name matches *)

type t = item list

val empty : t
val of_channels : Csp_trace.Channel.t list -> t
val of_names : string list -> t
(** Each name matches the single unsubscripted channel of that name. *)

val bases : string list -> t
val family : string -> Vset.t -> item

val hash : t -> int
(** Deep structural hash, consistent with structural equality. *)

val equal : t -> t -> bool
(** Structural equality, item by item (no reordering or semantic
    normalisation: [{a, b}] and [{b, a}] are different sets). *)

val mem : ?rho:Valuation.t -> t -> Csp_trace.Channel.t -> bool
(** [mem cs c]: does [c] belong to the set?  Items whose subscripts
    cannot be evaluated under [rho] are matched conservatively by base
    name (so alphabets never silently shrink). *)

val union : t -> t -> t

val base_names : t -> string list
(** The base names mentioned by the set, deduplicated. *)

val subst_value : string -> Csp_trace.Value.t -> t -> t
val free_vars : t -> string list
val pp : Format.formatter -> t -> unit
