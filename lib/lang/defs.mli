(** Definition environments: lists of (possibly mutually recursive)
    process and process-array equations, §1.1 (7)–(9).

    A plain equation [p ≜ P] has no parameter; a process-array equation
    [q[x:M] ≜ Q] carries the bound variable and its set.  Occurrences of
    the defined names inside bodies are recursive. *)

type def = {
  name : string;
  param : (string * Vset.t) option;
  body : Process.t;
}

type t

val empty : t
val add : def -> t -> t
val define : string -> Process.t -> t -> t
(** [define p body defs] adds the plain equation [p ≜ body]. *)

val define_array : string -> string -> Vset.t -> Process.t -> t -> t
(** [define_array q x m body defs] adds [q[x:M] ≜ body]. *)

val of_list : def list -> t
val lookup : t -> string -> def option
val names : t -> string list

exception Undefined of string
exception Bad_argument of string

val unfold : t -> string -> Csp_trace.Value.t option -> Process.t
(** Replace a (possibly subscripted) process name by its definition,
    substituting the evaluated argument for the array parameter.
    @raise Undefined for unknown names.
    @raise Bad_argument on arity mismatch or when the argument is not a
    member of the declared set. *)

val unfold_ref : t -> Valuation.t -> string -> Expr.t option -> Process.t
(** Like {!unfold}, evaluating the argument expression first. *)

val channel_bases : t -> Process.t -> string list
(** Base names of all channels a process can communicate on, following
    process references (each definition visited once). *)

val well_guarded : t -> (unit, string) result
(** Check that every cycle of recursive references passes through at
    least one communication prefix, so that fixpoint approximation is
    productive.  Returns [Error msg] naming an offending definition. *)

val pp : Format.formatter -> t -> unit
