(** Systematic process mutation.

    Single-point mutants of a process term, used to evaluate the
    verification tooling: a useful checker should {e kill} (refute or
    fail to prove) mutants that change behaviour.  Four operator
    families:

    - [value]: an output constant is incremented ([c!3 → c!4]);
    - [channel]: one communication is moved to another base name
      occurring in the same definition ([wire!x → output!x]);
    - [branch]: one side of an alternative is dropped;
    - [truncate]: a continuation is replaced by [STOP].

    Truncation mutants are special: a prefix-closed specification can
    never reject them — "STOP satisfies any satisfiable invariant
    whatsoever" (§4) — so they calibrate what partial correctness
    cannot see (the refusals extension can). *)

type mutant = {
  description : string;  (** e.g. ["value+1 in output on wire"] *)
  operator : [ `Value | `Channel | `Branch | `Truncate ];
  body : Process.t;
}

val mutants : Process.t -> mutant list
(** All single-point mutants, syntactically distinct from the original. *)

val mutate_def : Defs.t -> string -> (mutant * Defs.t) list
(** Every mutant of the named definition's body, each packaged as a full
    definition environment with only that body replaced. *)
