type cmp = Le | Lt | Ge | Gt | Eq | Ne

type t =
  | True
  | False
  | Atom of string * cmp * int
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t

type env = (string * int) list

exception Unbound of string

let cmp_holds op v k =
  match op with
  | Le -> v <= k
  | Lt -> v < k
  | Ge -> v >= k
  | Gt -> v > k
  | Eq -> v = k
  | Ne -> v <> k

let rec eval env = function
  | True -> true
  | False -> false
  | Atom (x, op, k) -> (
    match List.assoc_opt x env with
    | Some v -> cmp_holds op v k
    | None -> raise (Unbound x))
  | Not f -> not (eval env f)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Imp (a, b) -> (not (eval env a)) || eval env b

let negate_cmp = function
  | Le -> Gt
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Eq -> Ne
  | Ne -> Eq

let rec nnf = function
  | (True | False | Atom _) as f -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Imp (a, b) -> Or (nnf (Not a), nnf b)
  | Not f -> (
    match f with
    | True -> False
    | False -> True
    | Atom (x, op, k) -> Atom (x, negate_cmp op, k)
    | Not g -> nnf g
    | And (a, b) -> Or (nnf (Not a), nnf (Not b))
    | Or (a, b) -> And (nnf (Not a), nnf (Not b))
    | Imp (a, b) -> And (nnf a, nnf (Not b)))

let vars f =
  let rec go acc = function
    | True | False -> acc
    | Atom (x, _, _) -> if List.mem x acc then acc else x :: acc
    | Not g -> go acc g
    | And (a, b) | Or (a, b) | Imp (a, b) -> go (go acc a) b
  in
  List.rev (go [] f)

let rec max_const f x =
  match f with
  | True | False -> min_int
  | Atom (y, _, k) -> if String.equal x y then k else min_int
  | Not g -> max_const g x
  | And (a, b) | Or (a, b) | Imp (a, b) -> max (max_const a x) (max_const b x)

let unbounded_above ~lo f x =
  (match vars f with
  | [] | [ _ ] -> ()
  | vs ->
    if List.exists (fun v -> not (String.equal v x)) vs then
      invalid_arg "Formula.unbounded_above: multi-parameter formula");
  let probe = max lo (max_const f x + 1) in
  eval [ (x, probe) ] f

let all_sat ~lo ~hi f =
  let xs = List.sort String.compare (vars f) in
  let rec assign acc = function
    | [] ->
      let env = List.rev acc in
      if eval env f then [ env ] else []
    | x :: rest ->
      List.concat_map
        (fun v -> assign ((x, v) :: acc) rest)
        (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))
  in
  assign [] xs

(* ---- printing --------------------------------------------------------- *)

let cmp_to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "=="
  | Ne -> "!="

(* precedence: Or 1, And 2, Imp 0, Not/atoms 3 *)
let rec pp_prec prec fmt f =
  let open Format in
  let paren p body =
    if prec > p then fprintf fmt "(%t)" body else body fmt
  in
  match f with
  | True -> pp_print_string fmt "true"
  | False -> pp_print_string fmt "false"
  | Atom (x, op, k) -> fprintf fmt "%s %s %d" x (cmp_to_string op) k
  | Not g -> fprintf fmt "!%a" (pp_prec 3) g
  | And (a, b) ->
    paren 2 (fun fmt -> fprintf fmt "%a && %a" (pp_prec 2) a (pp_prec 2) b)
  | Or (a, b) ->
    paren 1 (fun fmt -> fprintf fmt "%a || %a" (pp_prec 1) a (pp_prec 1) b)
  | Imp (a, b) ->
    (* no concrete syntax for Imp: print its NNF expansion *)
    pp_prec prec fmt (Or (nnf (Not a), nnf b))

let pp fmt f = pp_prec 0 fmt f
let to_string f = Format.asprintf "%a" pp f

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Atom (x, op, k), Atom (y, oq, l) -> String.equal x y && op = oq && k = l
  | Not a, Not b -> equal a b
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Imp (a1, a2), Imp (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | _ -> false

(* ---- parsing ---------------------------------------------------------- *)

type token = TIdent of string | TInt of int | TOp of string | TLp | TRp

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (
      toks := TLp :: !toks;
      incr i)
    else if c = ')' then (
      toks := TRp :: !toks;
      incr i)
    else if is_alpha c then (
      let j = ref !i in
      while !j < n && (is_alpha s.[!j] || is_digit s.[!j]) do
        incr j
      done;
      toks := TIdent (String.sub s !i (!j - !i)) :: !toks;
      i := !j)
    else if is_digit c then (
      let j = ref !i in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      toks := TInt (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j)
    else
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" | ">=" | "==" | "!=" | "&&" | "||" ->
        toks := TOp two :: !toks;
        i := !i + 2
      | _ -> (
        match c with
        | '<' | '>' | '=' | '!' ->
          toks := TOp (String.make 1 c) :: !toks;
          incr i
        | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c)))
  done;
  List.rev !toks

let cmp_of_op = function
  | "<=" -> Some Le
  | "<" -> Some Lt
  | ">=" -> Some Ge
  | ">" -> Some Gt
  | "=" | "==" -> Some Eq
  | "!=" -> Some Ne
  | _ -> None

(* [k op x] normalised onto the parameter: flip the comparison. *)
let flip_cmp = function
  | Le -> Ge
  | Lt -> Gt
  | Ge -> Le
  | Gt -> Lt
  | Eq -> Eq
  | Ne -> Ne

let of_string s =
  try
    let toks = ref (tokenize s) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let expect_cmp () =
      match peek () with
      | Some (TOp o) -> (
        match cmp_of_op o with
        | Some c ->
          advance ();
          c
        | None -> raise (Parse_error ("expected comparison, got " ^ o)))
      | _ -> raise (Parse_error "expected comparison operator")
    in
    let rec formula () =
      let a = conj () in
      match peek () with
      | Some (TOp "||") ->
        advance ();
        Or (a, formula ())
      | _ -> a
    and conj () =
      let a = unit_ () in
      match peek () with
      | Some (TOp "&&") ->
        advance ();
        And (a, conj ())
      | _ -> a
    and unit_ () =
      match peek () with
      | Some (TOp "!") ->
        advance ();
        Not (unit_ ())
      | Some TLp ->
        advance ();
        let f = formula () in
        (match peek () with
        | Some TRp -> advance ()
        | _ -> raise (Parse_error "expected ')'"));
        f
      | Some (TIdent "true") ->
        advance ();
        True
      | Some (TIdent "false") ->
        advance ();
        False
      | Some (TIdent x) ->
        advance ();
        let op = expect_cmp () in
        (match peek () with
        | Some (TInt k) ->
          advance ();
          Atom (x, op, k)
        | _ -> raise (Parse_error "expected integer after comparison"))
      | Some (TInt k) ->
        advance ();
        let op = expect_cmp () in
        (match peek () with
        | Some (TIdent x) ->
          advance ();
          Atom (x, flip_cmp op, k)
        | _ -> raise (Parse_error "expected parameter after comparison"))
      | _ -> raise (Parse_error "expected formula")
    in
    let f = formula () in
    match !toks with
    | [] -> Ok f
    | _ -> raise (Parse_error "trailing input")
  with Parse_error m -> Error ("formula: " ^ m)
