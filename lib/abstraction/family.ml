module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module History = Csp_trace.History
module Vset = Csp_lang.Vset
module Chan_expr = Csp_lang.Chan_expr
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion
module Obs = Csp_obs.Obs

type t = {
  fam : Counter.family;
  param : string;
  min_param : int;
  invariants : (string * Assertion.t) list;
  abstract_event : Event.t -> Event.t option;
  doc : string;
}

let c_family_checks = Obs.Counter.make "abstraction.family_checks"
let c_classes = Obs.Counter.make "abstraction.classes"

(* ---- building blocks --------------------------------------------------- *)

let v01 = Vset.Range (0, 1)
let vi n = Value.Int n

(* α for all three presets: forget channel indices, cap identifier
   values at 1 (the context keeps id 0, every replica collapses to 1). *)
let erase_cap ev =
  Some
    (Event.make
       (Channel.simple (Channel.base ev.Event.chan))
       (Chanabs.cap_value 1 ev.Event.value))

let abstract_trace (t : t) tr = List.filter_map t.abstract_event tr

let len name = Term.Len (Term.Chan (Chan_expr.simple name))
let le a b = Assertion.Cmp (Assertion.Le, a, b)

(* ---- token ring --------------------------------------------------------- *)

let token_ring =
  let token = Vset.Enum [ vi 0 ] in
  let defs =
    Defs.empty
    |> Defs.define "aring0"
         (Process.send "work" (Csp_lang.Expr.int 0)
            (Process.send "pass" (Csp_lang.Expr.int 0)
               (Process.recv "pass" "t" token (Process.ref_ "aring0"))))
    |> Defs.define "aring"
         (Process.recv "pass" "t" token
            (Process.send "work" (Csp_lang.Expr.int 1)
               (Process.send "pass" (Csp_lang.Expr.int 0)
                  (Process.ref_ "aring"))))
  in
  {
    fam =
      {
        Counter.name = "token-ring";
        context = Some (Process.ref_ "aring0");
        replicas = [ ("station", Process.ref_ "aring", fun n -> n - 1) ];
        defs;
        sync_bases = [ "pass" ];
        cutoff = 2;
      };
    param = "n";
    min_param = 2;
    invariants =
      [
        ("pass-behind-work", le (len "pass") (len "work"));
        ("work-window", le (len "work") (Term.Add (len "pass", Term.int 1)));
      ];
    abstract_event = erase_cap;
    doc =
      "token ring, indices erased: work values capped at 1, pass is the \
       pairwise rendezvous";
  }

(* ---- leader election ---------------------------------------------------- *)

let leader =
  let defs =
    Defs.empty
    |> Defs.define "anode0"
         (Process.send "elect" (Csp_lang.Expr.int 0)
            (Process.recv "elect" "v"
               (Vset.Enum [ vi 1 ])
               (Process.send "leader" (Csp_lang.Expr.int 1)
                  (Process.ref_ "anode0"))))
    |> Defs.define "anode"
         (Process.recv "elect" "v" v01
            (Process.send "elect" (Csp_lang.Expr.int 1) (Process.ref_ "anode")))
  in
  let tk = Term.Var "k" in
  let leader_is_max =
    Assertion.Forall
      ( "k",
        Vset.Nat,
        Assertion.Imp
          ( Assertion.And
              ( Assertion.Cmp (Assertion.Le, Term.int 1, tk),
                Assertion.Cmp (Assertion.Le, tk, len "leader") ),
            Assertion.Eq (Term.Index (Term.Chan (Chan_expr.simple "leader"), tk), Term.int 1)
          ) )
  in
  {
    fam =
      {
        Counter.name = "leader";
        context = Some (Process.ref_ "anode0");
        replicas = [ ("node", Process.ref_ "anode", fun n -> n - 1) ];
        defs;
        sync_bases = [ "elect" ];
        cutoff = 2;
      };
    param = "n";
    min_param = 2;
    invariants =
      [
        ("leader-is-max", leader_is_max);
        ("leader-after-election", le (len "leader") (len "elect"));
      ];
    abstract_event = erase_cap;
    doc =
      "max-collecting election ring, identifiers projected through cap 1: \
       the abstract maximum 1 must be the only announced leader";
  }

(* ---- dining philosophers ------------------------------------------------ *)

let philosophers =
  let grab_eat_put id tail =
    Process.send "left" (Csp_lang.Expr.int id)
      (Process.send "right" (Csp_lang.Expr.int id)
         (Process.send "eat" (Csp_lang.Expr.int id)
            (Process.send "lput" (Csp_lang.Expr.int id)
               (Process.send "rput" (Csp_lang.Expr.int id) tail))))
  in
  let defs =
    Defs.empty
    |> Defs.define "afork"
         (Process.Choice
            ( Process.recv "left" "p" v01
                (Process.recv "lput" "q" v01 (Process.ref_ "afork")),
              Process.recv "right" "p" v01
                (Process.recv "rput" "q" v01 (Process.ref_ "afork")) ))
    |> Defs.define "aphil0" (grab_eat_put 0 (Process.ref_ "aphil0"))
    |> Defs.define "aphil" (grab_eat_put 1 (Process.ref_ "aphil"))
  in
  {
    fam =
      {
        Counter.name = "philosophers";
        context = Some (Process.ref_ "aphil0");
        replicas =
          [
            ("fork", Process.ref_ "afork", fun n -> n);
            ("phil", Process.ref_ "aphil", fun n -> n - 1);
          ];
        defs;
        sync_bases = [ "left"; "right"; "lput"; "rput" ];
        cutoff = 2;
      };
    param = "n";
    min_param = 2;
    invariants = [];
    abstract_event = erase_cap;
    doc =
      "the paper's symmetric dining philosophers, seats erased: forks and \
       philosophers as two replica classes (bench/soundness family; no \
       erased invariant shipped)";
  }

(* ---- independent worker pool -------------------------------------------- *)

let workers =
  let cycle id name =
    Process.send "tick" (Csp_lang.Expr.int id)
      (Process.send "tock" (Csp_lang.Expr.int id) (Process.ref_ name))
  in
  let defs =
    Defs.empty
    |> Defs.define "atick0" (cycle 0 "atick0")
    |> Defs.define "atick" (cycle 1 "atick")
  in
  {
    fam =
      {
        Counter.name = "workers";
        context = Some (Process.ref_ "atick0");
        replicas = [ ("worker", Process.ref_ "atick", fun n -> n - 1) ];
        defs;
        (* pairwise-disjoint concrete alphabets: every erased channel
           is solo, nothing rendezvouses *)
        sync_bases = [];
        cutoff = 2;
      };
    param = "n";
    min_param = 1;
    invariants = [ ("tock-behind-tick", le (len "tock") (len "tick")) ];
    abstract_event = erase_cap;
    doc =
      "n independent two-phase cyclers, indices erased: concrete state \
       space is 2^n while the abstract one saturates at the cutoff — \
       the bench's superlinear-vs-flat exhibit";
  }

let presets = [ token_ring; leader; philosophers; workers ]

let find name =
  let canon = String.lowercase_ascii (String.trim name) in
  let alias = function
    | "ring" | "token_ring" | "tokenring" -> "token-ring"
    | "phils" | "philos" -> "philosophers"
    | "worker" | "pool" -> "workers"
    | s -> s
  in
  List.find_opt (fun t -> String.equal t.fam.Counter.name (alias canon)) presets

(* ---- whole-family verification ------------------------------------------ *)

type class_outcome = {
  rep : int;
  instances : int list;
  unbounded_tail : bool;
  abstract_states : int;
  checked : (int, Trace.t * string) result;
}

type outcome = {
  formula : Formula.t;
  param : string;
  depth : int;
  classes : class_outcome list;
  certified : bool;
}

(* Smallest m ≥ lo with signature(m) = signature(m+1): replica counts
   are monotone in n and saturate at the cutoff, so beyond this point
   every instance shares one abstract LTS. *)
let stabilisation_point (t : t) ~lo =
  let sig_at m = Counter.initial_signature t.fam ~n:m in
  let rec scan m budget =
    if budget = 0 then None
    else if String.equal (sig_at m) (sig_at (m + 1)) then Some m
    else scan (m + 1) (budget - 1)
  in
  scan lo 64

let check_class (t : t) ~depth ~max_states rep =
  let r = Counter.explore ~max_states t.fam ~n:rep in
  let traces = Counter.visible_traces r.Counter.lts ~depth in
  let check_trace tr =
    let ctx = Term.ctx ~hist:(History.of_trace tr) () in
    List.find_map
      (fun (name, a) ->
        match Assertion.eval ctx a with
        | true -> None
        | false -> Some (tr, name)
        | exception Term.Eval_error m -> Some (tr, name ^ ": " ^ m))
      t.invariants
  in
  let failure = List.find_map check_trace traces in
  let checked =
    match failure with
    | None -> Ok (List.length traces)
    | Some (tr, name) -> Error (tr, name)
  in
  (r.Counter.quotient_states, checked)

let check_family ?(depth = 6) ?(max_states = 4000) (t : t) ~formula =
  Obs.Counter.incr c_family_checks;
  match Formula.vars formula with
  | v :: _ when not (String.equal v t.param) ->
    Error
      (Printf.sprintf "formula parameter %s does not match the family's %s" v
         t.param)
  | _ :: _ :: _ -> Error "family formulae take a single parameter"
  | _ -> (
    if t.invariants = [] then
      Error
        (Printf.sprintf "family %s ships no erased invariants to check"
           t.fam.Counter.name)
    else
      let lo = t.min_param in
      let unbounded =
        try Formula.unbounded_above ~lo formula t.param
        with Invalid_argument m -> invalid_arg m
      in
      match stabilisation_point t ~lo with
      | None -> Error "abstract initial state does not stabilise in n"
      | Some n_sat ->
        let hi = max (Formula.max_const formula t.param) (n_sat + 1) in
        let sat =
          List.filter
            (fun n -> Formula.eval [ (t.param, n) ] formula)
            (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))
        in
        if sat = [] && not unbounded then
          Error "no instance satisfies the formula"
        else
          (* group the satisfying instances by abstract signature; the
             unbounded tail joins the stabilised signature's class *)
          let tail_sig = Counter.initial_signature t.fam ~n:(hi + 1) in
          let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
          let order = ref [] in
          let add sg n =
            match Hashtbl.find_opt groups sg with
            | Some l -> l := n :: !l
            | None ->
              Hashtbl.add groups sg (ref [ n ]);
              order := sg :: !order
          in
          List.iter
            (fun n -> add (Counter.initial_signature t.fam ~n) n)
            sat;
          if unbounded && not (Hashtbl.mem groups tail_sig) then
            (* every enumerated instance misses the saturated class:
               the tail still needs a representative *)
            add tail_sig (hi + 1);
          let classes =
            List.rev_map
              (fun sg ->
                let instances = List.rev !(Hashtbl.find groups sg) in
                let rep = List.fold_left min (List.hd instances) instances in
                let tail = unbounded && String.equal sg tail_sig in
                let abstract_states, checked =
                  check_class t ~depth ~max_states rep
                in
                { rep; instances; unbounded_tail = tail; abstract_states; checked })
              !order
          in
          Obs.Counter.add c_classes (List.length classes);
          let certified =
            List.for_all
              (fun c -> match c.checked with Ok _ -> true | Error _ -> false)
              classes
          in
          Ok { formula; param = t.param; depth; classes; certified })

let pp_outcome fmt o =
  let open Format in
  let pp_instances fmt c =
    match (c.instances, c.unbounded_tail) with
    | [ n ], false -> fprintf fmt "%s=%d" o.param n
    | ns, tail ->
      fprintf fmt "%s in {%s%s}" o.param
        (String.concat "," (List.map string_of_int ns))
        (if tail then ",..." else "")
  in
  fprintf fmt "@[<v>formula %s: %d class%s at depth %d@," (Formula.to_string o.formula)
    (List.length o.classes)
    (if List.length o.classes = 1 then "" else "es")
    o.depth;
  List.iter
    (fun c ->
      match c.checked with
      | Ok n ->
        fprintf fmt "  class %a (rep %s=%d): HOLDS on %d abstract traces (%d abstract states)@,"
          pp_instances c o.param c.rep n c.abstract_states
      | Error (tr, name) ->
        fprintf fmt "  class %a (rep %s=%d): FAILS %s on %s@," pp_instances c
          o.param c.rep name (Trace.to_string tr))
    o.classes;
  if o.certified then
    fprintf fmt "CERTIFIED for every %s satisfying %s@]" o.param
      (Formula.to_string o.formula)
  else fprintf fmt "NOT CERTIFIED@]"
