module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Chan_expr = Csp_lang.Chan_expr
module Valuation = Csp_lang.Valuation
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module Proc = Csp_lang.Proc
module Step = Csp_semantics.Step
module Lts = Csp_semantics.Lts
module Obs = Csp_obs.Obs

type family = {
  name : string;
  context : Process.t option;
  replicas : (string * Process.t * (int -> int)) list;
  defs : Defs.t;
  sync_bases : string list;
  cutoff : int;
}

type count = Fin of int | Omega

type result = {
  lts : Lts.t;
  legend : (int * Process.t) list;
  quotient_states : int;
  omega_collapses : int;
}

let c_states = Obs.Counter.make "abstraction.quotient_states"
let c_collapses = Obs.Counter.make "abstraction.collapses"

(* ---- local offers, with direction ------------------------------------- *)

type dir = Send | Recv

let opposite a b =
  match (a, b) with Send, Recv | Recv, Send -> true | _ -> false

(* Communication capabilities of a sequential local process: unlike
   {!Step.transitions_i}, offers keep the send/receive distinction,
   which the pairwise rendezvous rule needs (two receives must not
   pair).  Templates are closed and index-erased, so channel and
   message expressions evaluate under the empty valuation. *)
let offers_fn ~bound ~unfold_fuel cfg =
  let cache : (int, (dir * Event.t * Proc.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec go fuel p =
    if fuel < 0 then
      raise (Step.Unproductive "Counter: unguarded family template");
    match Proc.node p with
    | Proc.Stop -> []
    | Proc.Output (ce, e, k) ->
      let c = Chan_expr.eval Valuation.empty ce in
      let v = Expr.eval Valuation.empty e in
      [ (Send, Event.make c v, k) ]
    | Proc.Input (ce, x, m, k) ->
      let c = Chan_expr.eval Valuation.empty ce in
      List.map
        (fun v -> (Recv, Event.make c v, Proc.subst_value x v k))
        (Vset.enumerate_bounded ~bound m)
    | Proc.Choice (a, b) -> go fuel a @ go fuel b
    | Proc.Ref (nm, arg) -> go (fuel - 1) (Step.unfold_i cfg nm arg)
    | Proc.Par _ | Proc.Hide _ ->
      invalid_arg "Counter: family templates must be sequential"
  in
  fun p ->
    match Hashtbl.find_opt cache (Proc.id p) with
    | Some o -> o
    | None ->
      let o = go unfold_fuel p in
      Hashtbl.add cache (Proc.id p) o;
      o

(* ---- abstract states --------------------------------------------------- *)

type astate = { actx : Proc.t option; counts : (Proc.t * count) list }

(* Exploration context: deterministic numbering of local states in
   discovery order (stable across runs, unlike the global intern ids),
   the legend, and the ω-saturation counter. *)
type ectx = {
  nums : (int, int) Hashtbl.t;  (* Proc.id → local-state number *)
  mutable legend_rev : (int * Process.t) list;
  mutable next : int;
  mutable collapses : int;
  cutoff : int;
}

let number ec p =
  match Hashtbl.find_opt ec.nums (Proc.id p) with
  | Some i -> i
  | None ->
    let i = ec.next in
    ec.next <- i + 1;
    Hashtbl.add ec.nums (Proc.id p) i;
    ec.legend_rev <- (i, Proc.to_process p) :: ec.legend_rev;
    i

let canon ec counts =
  (* number first, in list order: sort comparators run in unspecified
     order, and discovery numbering must not depend on it *)
  List.iter (fun (s, _) -> ignore (number ec s)) counts;
  List.sort (fun (a, _) (b, _) -> compare (number ec a) (number ec b)) counts

let render ec st =
  let b = Buffer.create 32 in
  Buffer.add_string b "<";
  (match st.actx with
  | Some c -> Buffer.add_string b (Printf.sprintf "c%d" (number ec c))
  | None -> Buffer.add_char b '-');
  Buffer.add_string b " |";
  List.iter
    (fun (s, cnt) ->
      Buffer.add_string b
        (Printf.sprintf " s%d^%s" (number ec s)
           (match cnt with Fin n -> string_of_int n | Omega -> "w")))
    st.counts;
  Buffer.add_string b ">";
  Buffer.contents b

(* ---- counted-multiset operations --------------------------------------- *)

let lookup s m =
  List.find_map (fun (t, c) -> if Proc.equal s t then Some c else None) m

let remove s m = List.filter (fun (t, _) -> not (Proc.equal s t)) m
let set s c m = (s, c) :: remove s m

let inc ec s m =
  match lookup s m with
  | None -> set s (Fin 1) m
  | Some (Fin n) ->
    if n + 1 > ec.cutoff then (
      ec.collapses <- ec.collapses + 1;
      set s Omega m)
    else set s (Fin (n + 1)) m
  | Some Omega -> m

(* ω − 1 is ω or exactly the cutoff: both successors are produced, so
   the abstraction stays an over-approximation whichever the concrete
   count was. *)
let dec_variants ec s m =
  match lookup s m with
  | None -> []
  | Some (Fin 1) -> [ remove s m ]
  | Some (Fin n) -> [ set s (Fin (n - 1)) m ]
  | Some Omega -> [ m; set s (Fin ec.cutoff) m ]

let available_twice = function Fin n -> n >= 2 | Omega -> true

(* decrement the same local state twice *)
let dec2_variants ec s m =
  match lookup s m with
  | None | Some (Fin 1) -> []
  | Some (Fin n) ->
    if n = 2 then [ remove s m ] else [ set s (Fin (n - 2)) m ]
  | Some Omega ->
    (* ω − 2 ∈ {ω, cutoff, cutoff − 1} (dropping counts that hit 0) *)
    [ m; set s (Fin ec.cutoff) m ]
    @
    if ec.cutoff >= 2 then [ set s (Fin (ec.cutoff - 1)) m ]
    else [ remove s m ]

(* ---- successor relation ------------------------------------------------ *)

let successors ec offers sync_bases st =
  let is_sync (ev : Event.t) =
    List.mem (Channel.base ev.Event.chan) sync_bases
  in
  let ctx_offers =
    match st.actx with Some c -> offers c | None -> []
  in
  let acc = ref [] in
  let emit ev st' = acc := (ev, st') :: !acc in
  (* solo context steps *)
  List.iter
    (fun (_, ev, k) ->
      if not (is_sync ev) then
        emit ev { st with actx = Some k })
    ctx_offers;
  (* solo replica steps *)
  List.iter
    (fun (s, _) ->
      List.iter
        (fun (_, ev, k) ->
          if not (is_sync ev) then
            List.iter
              (fun m -> emit ev { st with counts = canon ec (inc ec k m) })
              (dec_variants ec s st.counts))
        (offers s))
    st.counts;
  (* context ↔ replica rendezvous *)
  List.iter
    (fun (dc, ev, kc) ->
      if is_sync ev then
        List.iter
          (fun (s, _) ->
            List.iter
              (fun (dr, ev', kr) ->
                if is_sync ev' && Event.equal ev ev' && opposite dc dr then
                  List.iter
                    (fun m ->
                      emit ev
                        { actx = Some kc; counts = canon ec (inc ec kr m) })
                    (dec_variants ec s st.counts))
              (offers s))
          st.counts)
    ctx_offers;
  (* replica ↔ replica rendezvous, distinct local states *)
  let rec pairs = function
    | [] -> ()
    | (s1, _) :: rest ->
      List.iter
        (fun (s2, _) ->
          List.iter
            (fun (d1, ev1, k1) ->
              if is_sync ev1 then
                List.iter
                  (fun (d2, ev2, k2) ->
                    if is_sync ev2 && Event.equal ev1 ev2 && opposite d1 d2
                    then
                      List.iter
                        (fun m ->
                          List.iter
                            (fun m' ->
                              emit ev1
                                {
                                  st with
                                  counts =
                                    canon ec (inc ec k2 (inc ec k1 m'));
                                })
                            (dec_variants ec s2 m))
                        (dec_variants ec s1 st.counts))
                  (offers s2))
            (offers s1))
        rest;
      pairs rest
  in
  pairs st.counts;
  (* replica ↔ replica rendezvous within one local state (needs two
     occupants) *)
  List.iter
    (fun (s, cnt) ->
      if available_twice cnt then
        let os = offers s in
        List.iter
          (fun (d1, ev1, k1) ->
            if is_sync ev1 then
              List.iter
                (fun (d2, ev2, k2) ->
                  (* orientation: sender first, to avoid emitting each
                     pairing twice *)
                  match (d1, d2) with
                  | Send, Recv when is_sync ev2 && Event.equal ev1 ev2 ->
                    List.iter
                      (fun m ->
                        emit ev1
                          {
                            st with
                            counts = canon ec (inc ec k2 (inc ec k1 m));
                          })
                      (dec2_variants ec s st.counts)
                  | _ -> ())
                os)
          os)
    st.counts;
  List.rev !acc

(* ---- exploration ------------------------------------------------------- *)

let saturate ec r =
  if r > ec.cutoff then (
    ec.collapses <- ec.collapses + 1;
    Omega)
  else Fin r

let initial_state ec (fam : family) ~n =
  let actx = Option.map Proc.intern fam.context in
  (* number the context first, then the templates in declaration
     order, so renderings are a function of the family alone *)
  (match actx with Some c -> ignore (number ec c) | None -> ());
  let counts =
    List.fold_left
      (fun m (_, tmpl, count_of) ->
        let r = count_of n in
        if r <= 0 then m
        else
          let s = Proc.intern tmpl in
          ignore (number ec s);
          match lookup s m with
          | None -> set s (saturate ec r) m
          | Some (Fin prev) -> set s (saturate ec (prev + r)) m
          | Some Omega -> m)
      [] fam.replicas
  in
  { actx; counts = canon ec counts }

let fresh_ectx (fam : family) =
  {
    nums = Hashtbl.create 64;
    legend_rev = [];
    next = 0;
    collapses = 0;
    cutoff = fam.cutoff;
  }

let initial_signature (fam : family) ~n =
  let ec = fresh_ectx fam in
  render ec (initial_state ec fam ~n)

let explore ?(max_states = 4000) ?(bound = 2) ?(unfold_fuel = 64)
    (fam : family) ~n =
  if fam.cutoff < 1 then invalid_arg "Counter.explore: cutoff must be >= 1";
  let cfg = Step.config ~unfold_fuel fam.defs in
  let offers = offers_fn ~bound ~unfold_fuel cfg in
  let ec = fresh_ectx fam in
  let init = initial_state ec fam ~n in
  let visited : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let states_rev = ref [] in
  let n_states = ref 0 in
  let truncated_ids = Hashtbl.create 8 in
  let transitions_rev = ref [] in
  let queue = Queue.create () in
  let alloc st =
    let key = render ec st in
    match Hashtbl.find_opt visited key with
    | Some i -> Some i
    | None ->
      if !n_states >= max_states then None
      else begin
        let i = !n_states in
        incr n_states;
        Hashtbl.add visited key i;
        states_rev := Process.Ref (key, None) :: !states_rev;
        Queue.add (st, i) queue;
        Some i
      end
  in
  (match alloc init with
  | Some 0 -> ()
  | _ -> assert false);
  while not (Queue.is_empty queue) do
    let st, src = Queue.pop queue in
    List.iter
      (fun (ev, st') ->
        match alloc st' with
        | Some tgt ->
          transitions_rev :=
            { Lts.source = src; event = ev; visible = true; target = tgt }
            :: !transitions_rev
        | None -> Hashtbl.replace truncated_ids src true)
      (successors ec offers fam.sync_bases st)
  done;
  let states = Array.of_list (List.rev !states_rev) in
  let truncated =
    Array.init (Array.length states) (fun i -> Hashtbl.mem truncated_ids i)
  in
  let complete = Hashtbl.length truncated_ids = 0 in
  let lts =
    Lts.make ~truncated ~initial:0 ~states
      ~transitions:(List.rev !transitions_rev)
      ~complete ()
  in
  Obs.Counter.add c_states !n_states;
  Obs.Counter.add c_collapses ec.collapses;
  {
    lts;
    legend = List.rev ec.legend_rev;
    quotient_states = !n_states;
    omega_collapses = ec.collapses;
  }

(* ---- trace queries on explicit LTSs ------------------------------------ *)

let successor_array (lts : Lts.t) =
  let succs = Array.make (Array.length lts.Lts.states) [] in
  List.iter
    (fun (t : Lts.transition) -> succs.(t.Lts.source) <- t :: succs.(t.Lts.source))
    lts.Lts.transitions;
  Array.map List.rev succs

module IntSet = Set.Make (Int)

let eps_closure succs set =
  let rec go frontier acc =
    if IntSet.is_empty frontier then acc
    else
      let next =
        IntSet.fold
          (fun s acc' ->
            List.fold_left
              (fun acc'' (t : Lts.transition) ->
                if (not t.Lts.visible) && not (IntSet.mem t.Lts.target acc)
                then IntSet.add t.Lts.target acc''
                else acc'')
              acc' succs.(s))
          frontier IntSet.empty
      in
      go (IntSet.diff next acc) (IntSet.union next acc)
  in
  go set set

let accepts (lts : Lts.t) tr =
  let succs = successor_array lts in
  let rec go set = function
    | [] -> not (IntSet.is_empty set)
    | _ :: _ when IntSet.exists (fun s -> lts.Lts.truncated.(s)) set ->
      (* the trace may continue through dropped transitions *)
      true
    | ev :: rest ->
      let next =
        IntSet.fold
          (fun s acc ->
            List.fold_left
              (fun acc' (t : Lts.transition) ->
                if t.Lts.visible && Event.equal t.Lts.event ev then
                  IntSet.add t.Lts.target acc'
                else acc')
              acc succs.(s))
          set IntSet.empty
      in
      if IntSet.is_empty next then false else go (eps_closure succs next) rest
  in
  go (eps_closure succs (IntSet.singleton lts.Lts.initial)) tr

let visible_traces (lts : Lts.t) ~depth =
  let succs = successor_array lts in
  let visited : (int * Event.t list, unit) Hashtbl.t = Hashtbl.create 1024 in
  let traces : (Event.t list, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push state rev_tr len =
    let key = (state, rev_tr) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      Queue.add (state, rev_tr, len) queue
    end
  in
  Hashtbl.replace traces [] ();
  push lts.Lts.initial [] 0;
  while not (Queue.is_empty queue) do
    let state, rev_tr, len = Queue.pop queue in
    List.iter
      (fun (t : Lts.transition) ->
        if not t.Lts.visible then push t.Lts.target rev_tr len
        else if len < depth then begin
          let rev_tr' = t.Lts.event :: rev_tr in
          Hashtbl.replace traces (List.rev rev_tr') ();
          push t.Lts.target rev_tr' (len + 1)
        end)
      succs.(state)
  done;
  List.sort Trace.compare (Hashtbl.fold (fun tr () acc -> tr :: acc) traces [])
