(** Preset replica families and whole-family verification.

    A {!t} packages a {!Counter.family} (the abstract side) with the
    erasure [α] relating concrete instances to it and the erased
    invariants worth proving.  {!check_family} then discharges
    [P sat R] for {e every} instance selected by an assumption
    formula in one run: satisfying parameter values are grouped into
    classes with equal abstract initial signatures — all values above
    the counter cutoff collapse into one class, so a formula like
    [n <= 32] (or even an unbounded [n >= 2]) costs a handful of
    abstract explorations — and each class representative's abstract
    traces are enumerated and checked.

    Soundness direction: the abstract LTS over-approximates the
    α-image of every concrete instance's traces, so [certified = true]
    transfers to all selected instances; a failing class may be a
    genuine violation or abstraction noise.  The [abstract-sound]
    oracle cross-checks both the inclusion and certified verdicts
    against bounded concrete enumeration at n ∈ {2,3,4}. *)

type t = {
  fam : Counter.family;
  param : string;  (** the family parameter, conventionally ["n"] *)
  min_param : int;  (** smallest meaningful instance (2 for rings) *)
  invariants : (string * Csp_assertion.Assertion.t) list;
      (** named invariants over the {e erased} channels *)
  abstract_event : Csp_trace.Event.t -> Csp_trace.Event.t option;
      (** α on events of a concrete instance: forget indices, map the
          value; [None] drops the event *)
  doc : string;
}

val token_ring : t
(** {!Csp.Models.Token_ring} erased: one context station holding the
    token, n−1 identical stations; [pass] is the rendezvous channel.
    Invariants: [#pass ≤ #work ≤ #pass + 1] (the token is unique). *)

val leader : t
(** {!Csp.Models.Leader} erased and value-projected through
    {!Chanabs.cap_value}[ 1]: identifiers collapse to {0, 1} with 1
    the abstract maximum.  Invariants: every announced leader is the
    abstract maximum, and [#leader ≤ #elect]. *)

val philosophers : t
(** The paper's §4 dining philosophers (symmetric variant,
    [left_handed_last:false]) erased: forks and philosophers as two
    replica classes.  No n-independent erased invariant is shipped;
    the family exists for state-space benchmarks and the soundness
    oracle — its concrete state space grows combinatorially in n
    while the abstract one stays flat. *)

val workers : t
(** {!Csp.Models.Workers} erased: n independent two-phase cyclers
    with nothing to synchronise ([sync_bases = []]).  The concrete
    interleaving has [2^n] states; the abstract quotient saturates at
    the cutoff.  Invariant: [#tock ≤ #tick]. *)

val presets : t list
val find : string -> t option
(** By name ([token-ring], [leader], [philosophers]) or common alias
    ([ring], [phils]). *)

val abstract_trace : t -> Csp_trace.Trace.t -> Csp_trace.Trace.t
(** α lifted to traces. *)

type class_outcome = {
  rep : int;  (** representative parameter value, the class minimum *)
  instances : int list;  (** enumerated satisfying values in the class *)
  unbounded_tail : bool;
      (** the class also contains every satisfying value above the
          enumeration bound *)
  abstract_states : int;
  checked : (int, Csp_trace.Trace.t * string) result;
      (** [Ok traces_checked], or the offending abstract trace and the
          violated invariant *)
}

type outcome = {
  formula : Formula.t;
  param : string;
  depth : int;
  classes : class_outcome list;
  certified : bool;  (** every class checked [Ok] *)
}

val check_family :
  ?depth:int ->
  ?max_states:int ->
  t ->
  formula:Formula.t ->
  (outcome, string) result
(** Verify every invariant of the family on every abstract trace of
    length ≤ [depth] (default 6), once per assignment class of the
    formula.  [Error] when the formula mentions a parameter other than
    the family's, when no instance satisfies it, or when the family
    has no invariants.  Obs counters:
    [abstraction.family_checks], [abstraction.classes] (and the
    exploration's [abstraction.quotient_states] /
    [abstraction.collapses]). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable class-by-class report, as printed by
    [cspc prove --family]. *)
