(** Channel abstractions: [Ignore] and [Project] as process-to-process
    transformers.

    Both abstractions are {e over-approximations of traces} — their
    soundness direction is one-way.  Writing [α] for the trace-level
    image of the abstraction (dropping the ignored events, or mapping
    the projected values), the guarantee is

    {v α(traces(P)) ⊆ traces(abstract(P)) v}

    so a property of the form "R holds on every trace" proved of the
    abstract process transfers to the (α-image of the) concrete one,
    while a counterexample found abstractly may be spurious.  The
    [abstract-sound] differential oracle checks exactly this inclusion
    against bounded concrete enumeration.

    [Ignore] erases a set of channels: outputs on them disappear,
    inputs become internal choices over the values that could have
    been received, and the channels leave every parallel alphabet and
    hiding set.  [Project] quotients the value domain of one channel
    through a mapping [f]: constant outputs are mapped, and each input
    binder unrolls into one branch per concrete value — the event
    carries the abstract value [f v] while the continuation keeps the
    concrete binding, so two values with the same image become
    nondeterminism, which is what collapses the state space.

    Erasing a guarding prefix can make a recursive definition
    unguarded; the transformers detect this ({!Csp_lang.Defs.well_guarded})
    and return [Error] rather than an unproductive system.  [Project]
    additionally reports whether the transformation stayed in the
    {e exact} fragment: an output on the projected channel whose value
    cannot be evaluated statically is widened to a choice over the
    abstract domain, which is no longer guaranteed to over-approximate
    — oracles skip the inclusion check when [exact] is false. *)

type projected = {
  defs : Csp_lang.Defs.t;
  proc : Csp_lang.Process.t;
  exact : bool;
      (** no output on the projected channel needed widening; the
          trace-inclusion guarantee holds *)
}

val ignore_bases :
  bases:string list ->
  bound:int ->
  Csp_lang.Defs.t ->
  Csp_lang.Process.t ->
  (Csp_lang.Defs.t * Csp_lang.Process.t, string) result
(** Erase every channel whose base name is listed.  [bound] caps the
    enumeration of infinite input sets (match it to the sampler bound
    of the configuration the result will run under).  [Error] when the
    erasure leaves an unguarded recursion. *)

val project :
  base:string ->
  f:(Csp_trace.Value.t -> Csp_trace.Value.t) ->
  dom:Csp_trace.Value.t list ->
  bound:int ->
  Csp_lang.Defs.t ->
  Csp_lang.Process.t ->
  (projected, string) result
(** Quotient the value domain of channels with the given base name
    through [f].  [dom] is the abstract domain used to widen
    statically unevaluable outputs (see [exact]).  [Error] when the
    transformed definitions are not well guarded (cannot happen for
    [project] itself — prefixes are kept — but kept symmetric). *)

val cap_value : int -> Csp_trace.Value.t -> Csp_trace.Value.t
(** [cap_value k]: integers above [k] map to [k]; other values are
    unchanged.  The standard projection for identifier-carrying
    channels. *)

val erase_trace : bases:string list -> Csp_trace.Trace.t -> Csp_trace.Trace.t
(** The trace-level image of {!ignore_bases}: drop every event on the
    listed base names. *)

val map_trace :
  base:string ->
  f:(Csp_trace.Value.t -> Csp_trace.Value.t) ->
  Csp_trace.Trace.t ->
  Csp_trace.Trace.t
(** The trace-level image of {!project}: map the value of every event
    on the given base name through [f]. *)
