(** Assumption formulae over family parameters.

    A family obligation like "the token ring satisfies its invariant
    for every n with 2 ≤ n ≤ 32" quantifies over the instances
    selected by a boolean formula whose atoms compare a parameter
    against integer constants.  The engine here mirrors the feature
    formulae of product-line model checkers: negation normal form,
    enumeration-based [all_sat], and the observation that makes
    unbounded families tractable — every atom compares against a
    constant, so a formula's truth value is {e eventually constant} in
    each parameter ({!unbounded_above}), and all sufficiently large
    instances fall into one assignment class. *)

type cmp = Le | Lt | Ge | Gt | Eq | Ne

type t =
  | True
  | False
  | Atom of string * cmp * int  (** [x ⋈ k] *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t

type env = (string * int) list
(** An assignment of integers to parameters. *)

exception Unbound of string
(** Raised by {!eval} on a parameter the environment does not bind. *)

val eval : env -> t -> bool

val nnf : t -> t
(** Negation normal form: [Imp] eliminated, [Not] pushed onto atoms
    and absorbed by flipping the comparison ([¬(x ≤ k) = x > k], …).
    The result contains no [Not] and no [Imp], and is
    {!eval}-equivalent to the input. *)

val vars : t -> string list
(** Parameters mentioned, deduplicated, in first-occurrence order. *)

val max_const : t -> string -> int
(** The largest constant the formula compares [x] against ([min_int]
    when [x] never occurs).  For every [v > max_const f x] each atom
    on [x] has a fixed truth value, so satisfaction of [f] is constant
    in [x] above that point. *)

val unbounded_above : lo:int -> t -> string -> bool
(** Does the single-parameter formula admit arbitrarily large
    satisfying values of [x] (at least [lo])?  Decided exactly by
    evaluating at [max_const + 1].
    @raise Invalid_argument when the formula mentions a parameter
    other than [x]. *)

val all_sat : lo:int -> hi:int -> t -> env list
(** Every satisfying assignment with each parameter drawn from
    [lo..hi], in lexicographic order of the (sorted) parameter list.
    A formula with no parameters yields [[ [] ]] when it holds and
    [[]] otherwise. *)

val of_string : string -> (t, string) result
(** Parse a formula.  Grammar (whitespace-insensitive):
    {v
      formula ::= conj ( '||' conj )*
      conj    ::= unit ( '&&' unit )*
      unit    ::= '!' unit | '(' formula ')' | 'true' | 'false' | atom
      atom    ::= ident op int | int op ident
      op      ::= '<=' | '<' | '>=' | '>' | '==' | '=' | '!=' v}
    A reversed atom [k op x] is normalised onto the parameter
    ([2 <= n] parses as [n >= 2]). *)

val to_string : t -> string
(** Prints in the concrete syntax {!of_string} accepts. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
