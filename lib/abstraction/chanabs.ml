module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Trace = Csp_trace.Trace
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Valuation = Csp_lang.Valuation
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs

type projected = {
  defs : Csp_lang.Defs.t;
  proc : Csp_lang.Process.t;
  exact : bool;
}

let in_bases bases (ce : Chan_expr.t) = List.mem ce.Chan_expr.name bases

(* Remove every item mentioning one of the erased base names.  Items
   match at least their own base, so dropping by base never keeps an
   erased channel in an alphabet. *)
let strip_bases bases (cs : Chan_set.t) : Chan_set.t =
  List.filter
    (fun item ->
      match item with
      | Chan_set.Chan ce -> not (in_bases bases ce)
      | Chan_set.Family (n, _) -> not (List.mem n bases)
      | Chan_set.Base n -> not (List.mem n bases))
    cs

let map_defs f defs =
  List.fold_left
    (fun acc name ->
      match Defs.lookup defs name with
      | Some d -> Defs.add { d with Defs.body = f d.Defs.body } acc
      | None -> acc)
    Defs.empty (Defs.names defs)

(* ---- Ignore ----------------------------------------------------------- *)

let rec ignore_proc bases bound p =
  let go = ignore_proc bases bound in
  match p with
  | Process.Stop -> Process.Stop
  | Process.Output (ce, _, k) when in_bases bases ce -> go k
  | Process.Output (ce, e, k) -> Process.Output (ce, e, go k)
  | Process.Input (ce, x, m, k) when in_bases bases ce -> (
    (* the environment could have supplied any value: internal choice
       over the substituted continuations *)
    match Vset.enumerate_bounded ~bound m with
    | [] -> Process.Stop
    | vs -> Process.choice (List.map (fun v -> go (Process.subst_value x v k)) vs))
  | Process.Input (ce, x, m, k) -> Process.Input (ce, x, m, go k)
  | Process.Choice (a, b) -> Process.Choice (go a, go b)
  | Process.Par (xa, ya, a, b) ->
    Process.Par (strip_bases bases xa, strip_bases bases ya, go a, go b)
  | Process.Hide (l, k) -> (
    match strip_bases bases l with
    | [] -> go k
    | l' -> Process.Hide (l', go k))
  | Process.Ref _ as r -> r

let ignore_bases ~bases ~bound defs p =
  let defs' = map_defs (ignore_proc bases bound) defs in
  match Defs.well_guarded defs' with
  | Ok () -> Ok (defs', ignore_proc bases bound p)
  | Error m -> Error ("ignore: erasure leaves unguarded recursion: " ^ m)

(* ---- Project ---------------------------------------------------------- *)

let project_proc ~base ~f ~dom ~bound exact p =
  let rec go p =
    match p with
    | Process.Stop -> Process.Stop
    | Process.Output (ce, e, k) when in_bases [ base ] ce -> (
      match Expr.eval Valuation.empty e with
      | v -> Process.Output (ce, Expr.value (f v), go k)
      | exception Expr.Eval_error _ -> (
        (* the message is not statically known: widen to any abstract
           value.  This loses the over-approximation guarantee. *)
        exact := false;
        match dom with
        | [] -> Process.Output (ce, e, go k)
        | _ ->
          Process.choice
            (List.map (fun w -> Process.Output (ce, Expr.value w, go k)) dom)))
    | Process.Output (ce, e, k) -> Process.Output (ce, e, go k)
    | Process.Input (ce, x, m, k) when in_bases [ base ] ce -> (
      (* one branch per concrete value: the event carries the abstract
         image, the continuation keeps the concrete binding — values
         with equal images become nondeterminism *)
      match Vset.enumerate_bounded ~bound m with
      | [] -> Process.Stop
      | vs ->
        Process.choice
          (List.map
             (fun v ->
               Process.Input
                 (ce, x, Vset.Enum [ f v ], go (Process.subst_value x v k)))
             vs))
    | Process.Input (ce, x, m, k) -> Process.Input (ce, x, m, go k)
    | Process.Choice (a, b) -> Process.Choice (go a, go b)
    | Process.Par (xa, ya, a, b) -> Process.Par (xa, ya, go a, go b)
    | Process.Hide (l, k) -> Process.Hide (l, go k)
    | Process.Ref _ as r -> r
  in
  go p

let project ~base ~f ~dom ~bound defs p =
  let exact = ref true in
  let tr = project_proc ~base ~f ~dom ~bound exact in
  let defs' = map_defs tr defs in
  match Defs.well_guarded defs' with
  | Ok () -> Ok { defs = defs'; proc = tr p; exact = !exact }
  | Error m -> Error ("project: transformed definitions unguarded: " ^ m)

(* ---- trace-level images ----------------------------------------------- *)

let cap_value k = function
  | Value.Int v when v > k -> Value.Int k
  | v -> v

let erase_trace ~bases tr =
  Trace.hide (fun c -> List.mem (Channel.base c) bases) tr

let map_trace ~base ~f tr =
  List.map
    (fun (ev : Csp_trace.Event.t) ->
      if String.equal (Channel.base ev.Csp_trace.Event.chan) base then
        Csp_trace.Event.make ev.Csp_trace.Event.chan (f ev.Csp_trace.Event.value)
      else ev)
    tr
