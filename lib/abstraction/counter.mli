(** Counter abstraction: one bounded abstract LTS for a whole replica
    family.

    A {!family} is a parameterised network of identical sequential
    replicas (plus an optional distinguished context process, e.g. the
    token-holding station), described by {e index-erased} templates:
    channels carry base names only, so replicas are interchangeable.
    The abstraction quotients the interned-IR product state by the
    {b multiset of replica local states}: an abstract state records,
    for each distinct local state (a hash-consed {!Csp_lang.Proc}
    node), how many replicas currently occupy it — with counts capped
    at a cutoff [c], above which they collapse to ω ("more than c").
    Token ring, leader election or dining philosophers at {e any} n
    then map into one abstract state space whose size is independent
    of n.

    Transitions: a replica (or the context) may take any local step.
    Steps on channels listed in [sync_bases] are pairwise rendezvous —
    an output offer and an input offer of the same event from two
    distinct participants (two different local states, one local state
    occupied at least twice, or the context and a replica) fire
    together; every other channel is a solo step.  Decrementing ω is
    resolved nondeterministically to ω or to the exact cutoff, and
    incrementing past the cutoff saturates to ω — both choices keep
    the abstraction an {e over-approximation}: writing [α] for the
    event map that forgets indices (the family's own erasure), every
    α-image of a trace of the concrete instance is a trace of the
    abstract LTS, for every n.  The converse may fail; the
    [abstract-sound] oracle checks the inclusion against small
    concrete instances.

    The result is an ordinary {!Csp_semantics.Lts.t} built with
    [Lts.make] — states are rendered as synthetic [Ref] names like
    [⟨c0 | s1^2 s3^ω⟩] so DOT output, deadlock queries and signatures
    work unchanged; the [legend] maps the local-state numbers in those
    names back to process terms. *)

type family = {
  name : string;
  context : Csp_lang.Process.t option;
      (** distinguished n-independent participant, if any *)
  replicas : (string * Csp_lang.Process.t * (int -> int)) list;
      (** (class label, index-erased sequential template,
          replica count as a function of the family parameter n) *)
  defs : Csp_lang.Defs.t;
      (** definitions closing the templates; must be index-erased,
          closed and sequential (no [Par]/[Hide]) *)
  sync_bases : string list;
      (** channels communicated pairwise between participants;
          everything else is a solo step *)
  cutoff : int;  (** counter cap [c ≥ 1]; counts above collapse to ω *)
}

type count = Fin of int | Omega

type result = {
  lts : Csp_semantics.Lts.t;
  legend : (int * Csp_lang.Process.t) list;
      (** local-state number (as used in rendered state names) →
          process term, in discovery order *)
  quotient_states : int;  (** abstract states explored *)
  omega_collapses : int;
      (** count increments that saturated at the cutoff *)
}

val explore :
  ?max_states:int ->
  ?bound:int ->
  ?unfold_fuel:int ->
  family ->
  n:int ->
  result
(** Breadth-first exploration of the abstract state space at family
    parameter [n] (defaults: [max_states = 4000], value-enumeration
    [bound = 2], [unfold_fuel = 64]).  Deterministic: state numbering
    and the legend follow BFS discovery order.
    @raise Invalid_argument if a template is not sequential.
    @raise Csp_semantics.Step.Unproductive on unguarded templates. *)

val initial_signature : family -> n:int -> string
(** Canonical rendering of the abstract initial state at [n].  Because
    abstract successors are a function of the abstract state alone,
    equal signatures imply identical abstract LTSs — the basis for
    discharging one obligation per assignment class. *)

val accepts : Csp_semantics.Lts.t -> Csp_trace.Trace.t -> bool
(** NFA-style membership: is the trace a visible behaviour of the
    (explored part of the) LTS?  Hidden transitions are followed
    silently.  Conservative on truncated explorations: a trace leaving
    the explored region through a truncated state is accepted. *)

val visible_traces : Csp_semantics.Lts.t -> depth:int -> Csp_trace.Trace.t list
(** Every visible trace of length ≤ [depth], deduplicated and sorted;
    prefix-closed by construction.  Hidden transitions do not consume
    depth (cycles are cut by (state, trace) memoisation). *)
