(* The benchmark and experiment harness.

   Part 1 regenerates every experiment of DESIGN.md's index (E1–E11):
   the paper has no numeric tables — its evaluation consists of worked
   examples (the copier figure, Table 1 and the protocol, the multiplier
   figure) and the two model-limitation claims of §4 — so each
   experiment re-derives the corresponding claim and prints a
   paper-vs-measured line.  EXPERIMENTS.md records the outputs.

   Part 2 holds the ablations (A1–A2), the hash-consing comparison
   (P8, which writes BENCH_closure.json) and a Bechamel timing suite
   (P1–P7) characterising the cost of the semantic operations, the
   bounded checker, the proof system and the simulator.

   Run with: dune exec bench/main.exe            (everything)
             dune exec bench/main.exe -- quick   (part 1 only)
             dune exec bench/main.exe -- p8      (P8 comparison only)
             dune exec bench/main.exe -- p10     (P10 comparison only)
             dune exec bench/main.exe -- p11     (parallel scaling only)
             dune exec bench/main.exe -- p13     (compiled successor engine)
             dune exec bench/main.exe -- p14     (coverage-guided fuzzing)
             dune exec bench/main.exe -- p16     (counter abstraction)
             dune exec bench/main.exe -- smoke   (E11 + P8–P16, tiny
                                                  sizes; @bench-smoke) *)

open Csp
module Runner = Csp_sim.Runner

let section title = Printf.printf "\n=== %s ===\n" title
let result fmt = Printf.printf fmt

let ok b = if b then "OK" else "FAILED"

(* ---------------------------------------------------------------------- *)
(* E1: the copier pipeline                                                 *)
(* ---------------------------------------------------------------------- *)

let e1_copier () =
  section "E1: copier pipeline (§1.2, §2) — wire <= input, output <= input";
  let module C = Paper.Copier in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 3) C.defs in
  let ctx = Sequent.context C.defs in
  let line name p spec =
    let sat = Sat.check ~depth:6 cfg p spec in
    let proof =
      match Tactic.prove_and_check ~tables:C.tables ctx (Sequent.Holds (p, spec)) with
      | Ok (proof, report) ->
        Printf.sprintf "proved (%d rules, %d obligations, %d tested)"
          (Proof.size proof)
          (List.length report.Check.obligations)
          (Check.tested_obligations report)
      | Error m -> "PROOF FAILED: " ^ m
    in
    result "  %-34s  %-42s  %s\n" name
      (Format.asprintf "%a" Sat.pp_outcome sat)
      proof
  in
  line "copier sat wire <= input" C.copier C.copier_spec;
  line "recopier sat output <= wire" C.recopier C.recopier_spec;
  line "network sat output <= input" C.network C.network_spec;
  line "pipe sat output <= input" C.pipe C.network_spec;
  line "copier sat #input <= #wire + 1" C.copier C.count_spec

(* ---------------------------------------------------------------------- *)
(* E2: the protocol and Table 1                                            *)
(* ---------------------------------------------------------------------- *)

let e2_protocol () =
  section "E2: retransmission protocol — Table 1 regenerated";
  let module P = Paper.Protocol in
  let ctx = Sequent.context P.defs in
  (match
     Tactic.prove_and_check ~tables:P.tables ctx
       (Sequent.Holds (P.sender, P.sender_spec))
   with
  | Ok (_, report) -> Format.printf "%a@." Check.pp_report report
  | Error m -> result "Table 1 FAILED: %s\n" m);
  List.iter
    (fun (name, j) ->
      match Tactic.prove_and_check ~tables:P.tables ctx j with
      | Ok (proof, report) ->
        result "  %-44s proved (%d rules, %d tested obligations)\n" name
          (Proof.size proof)
          (Check.tested_obligations report)
      | Error m -> result "  %-44s FAILED: %s\n" name m)
    [
      ("receiver sat output <= f(wire)", Sequent.Holds (P.receiver, P.receiver_spec));
      ("protocol sat output <= input", Sequent.Holds (P.protocol, P.protocol_spec));
    ];
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) ~hide_fuel:8 P.defs in
  result "  bounded check: protocol sat output <= input: %s\n"
    (Format.asprintf "%a" Sat.pp_outcome
       (Sat.check ~depth:5 cfg P.protocol P.protocol_spec));
  (* goodput degradation under NACK bias *)
  result "  %8s %10s %10s %10s %10s\n" "p(NACK)" "inputs" "outputs" "wire"
    "goodput";
  List.iter
    (fun p_nack ->
      let weight (e : Event.t) =
        if Value.equal e.Event.value Value.nack then p_nack
        else if Value.equal e.Event.value Value.ack then 1.0 -. p_nack
        else 1.0
      in
      let r =
        Runner.run
          ~scheduler:(Scheduler.weighted ~seed:11 ~weight)
          ~max_steps:10_000 cfg P.protocol
      in
      let count c = Stats.count r.Runner.stats (Channel.simple c) in
      result "  %8.2f %10d %10d %10d %10.4f\n" p_nack (count "input")
        (count "output") (count "wire")
        (float_of_int (count "output")
        /. float_of_int r.Runner.stats.Stats.steps))
    [ 0.0; 0.25; 0.5; 0.75; 0.9 ]

(* ---------------------------------------------------------------------- *)
(* E3: the multiplier                                                      *)
(* ---------------------------------------------------------------------- *)

let e3_multiplier () =
  section "E3: systolic matrix-vector multiplier (§1.3(5))";
  result "  %-14s %-10s %-44s %s\n" "vector" "outputs" "bounded check"
    "monitor";
  List.iter
    (fun v ->
      let m = Paper.Multiplier.make ~v in
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) m.Paper.Multiplier.defs in
      let sat =
        Sat.check ~nat_bound:8 ~depth:6 cfg m.Paper.Multiplier.network
          m.Paper.Multiplier.spec
      in
      let r =
        Runner.run
          ~scheduler:(Scheduler.uniform ~seed:2)
          ~monitors:[ Runner.monitor "spec" m.Paper.Multiplier.spec ]
          ~max_steps:300 cfg m.Paper.Multiplier.multiplier
      in
      result "  %-14s %-10d %-44s %s\n"
        ("[" ^ String.concat ";" (List.map string_of_int v) ^ "]")
        (Stats.count r.Runner.stats (Channel.simple "output"))
        (Format.asprintf "%a" Sat.pp_outcome sat)
        (ok (r.Runner.violations = [])))
    [ [ 1; 2; 3 ]; [ 2; 7; 1 ]; [ 5 ]; [ 1; 0; 2; 1 ] ]

(* ---------------------------------------------------------------------- *)
(* E4: §3.1 theorems on random closures                                    *)
(* ---------------------------------------------------------------------- *)

let random_closure st depth =
  let rand_event () =
    Event.make
      (Channel.simple (String.make 1 (Char.chr (97 + Random.State.int st 3))))
      (Value.Int (Random.State.int st 2))
  in
  let rand_trace () =
    List.init (Random.State.int st depth) (fun _ -> rand_event ())
  in
  Closure.of_traces (List.init (1 + Random.State.int st 6) (fun _ -> rand_trace ()))

let e4_model_theorems () =
  section "E4: §3.1 theorems (prefix closure, distributivity) on random closures";
  let st = Random.State.make [| 2026 |] in
  let trials = 2000 in
  let count name pred =
    let passed = ref 0 in
    for _ = 1 to trials do
      let a = random_closure st 5 and b = random_closure st 5 in
      if pred a b then incr passed
    done;
    result "  %-52s %d/%d\n" name !passed trials
  in
  let in_a c = Channel.base c = "a" in
  let closed t =
    List.for_all
      (fun s -> List.for_all (fun p -> Closure.mem p t) (Trace.prefixes s))
      (Closure.to_traces t)
  in
  count "(a -> P) is a prefix closure" (fun a _ ->
      closed (Closure.prefix (Event.vi "a" 0) a));
  count "P\\C is a prefix closure" (fun a _ -> closed (Closure.hide in_a a));
  count "par is a prefix closure" (fun a b ->
      closed (Closure.par ~in_x:(fun _ -> true) ~in_y:in_a a b));
  count "(a -> (P u Q)) = (a -> P) u (a -> Q)" (fun a b ->
      let e = Event.vi "a" 0 in
      Closure.equal
        (Closure.prefix e (Closure.union a b))
        (Closure.union (Closure.prefix e a) (Closure.prefix e b)));
  count "(P u Q)\\C = P\\C u Q\\C" (fun a b ->
      Closure.equal
        (Closure.hide in_a (Closure.union a b))
        (Closure.union (Closure.hide in_a a) (Closure.hide in_a b)))

(* ---------------------------------------------------------------------- *)
(* E5: operational vs denotational                                         *)
(* ---------------------------------------------------------------------- *)

let e5_op_vs_deno () =
  section "E5: operational enumeration = denotational fixpoint";
  let sampler = Sampler.nat_bound 2 in
  let check name defs p depth =
    match
      Equiv.operational_vs_denotational ~depth
        (Step.config ~sampler defs)
        (Denote.config ~sampler defs)
        p
    with
    | Ok () -> result "  %-40s agree up to depth %d\n" name depth
    | Error s ->
      result "  %-40s DISAGREE on %s\n" name (Trace.to_string s)
  in
  check "copier" Paper.Copier.defs Paper.Copier.copier 6;
  check "copier network" Paper.Copier.defs Paper.Copier.network 5;
  check "protocol network" Paper.Protocol.defs Paper.Protocol.network 4;
  check "multiplier network" Paper.Multiplier.default.Paper.Multiplier.defs
    Paper.Multiplier.default.Paper.Multiplier.network 4

(* ---------------------------------------------------------------------- *)
(* E6: soundness — accepted proofs vs bounded model checking               *)
(* ---------------------------------------------------------------------- *)

let e6_soundness () =
  section "E6: soundness — every checker-accepted judgment survives model checking";
  let cases =
    [
      ("copier/wire<=input", Paper.Copier.defs, Paper.Copier.tables,
       Paper.Copier.copier, Paper.Copier.copier_spec);
      ("network/output<=input", Paper.Copier.defs, Paper.Copier.tables,
       Paper.Copier.network, Paper.Copier.network_spec);
      ("sender/f(wire)<=input", Paper.Protocol.defs, Paper.Protocol.tables,
       Paper.Protocol.sender, Paper.Protocol.sender_spec);
      ("receiver/output<=f(wire)", Paper.Protocol.defs, Paper.Protocol.tables,
       Paper.Protocol.receiver, Paper.Protocol.receiver_spec);
      ("protocol/output<=input", Paper.Protocol.defs, Paper.Protocol.tables,
       Paper.Protocol.protocol, Paper.Protocol.protocol_spec);
    ]
  in
  List.iter
    (fun (name, defs, tables, p, spec) ->
      let proved =
        Result.is_ok
          (Tactic.prove_and_check ~tables (Sequent.context defs)
             (Sequent.Holds (p, spec)))
      in
      let checked =
        match
          Sat.check ~depth:5
            (Step.config ~sampler:(Sampler.nat_bound 2) defs)
            p spec
        with
        | Sat.Holds _ -> true
        | Sat.Fails _ -> false
      in
      result "  %-28s proved=%b  model-checked=%b  %s\n" name proved checked
        (ok (proved && checked)))
    cases

(* ---------------------------------------------------------------------- *)
(* E7: partial correctness cannot exclude deadlock                         *)
(* ---------------------------------------------------------------------- *)

let e7_partiality () =
  section "E7: §4 defect 1 — STOP satisfies every satisfiable invariant";
  let specs =
    [
      ("wire <= input", Paper.Copier.copier_spec);
      ("output <= input", Paper.Copier.network_spec);
      ("f(wire) <= input", Paper.Protocol.sender_spec);
    ]
  in
  List.iter
    (fun (name, spec) ->
      let accepted =
        Result.is_ok
          (Check.check (Sequent.context Defs.empty)
             (Sequent.Holds (Process.Stop, spec))
             Proof.Emptiness)
      in
      result "  STOP sat %-22s accepted by the emptiness rule: %b\n" name
        accepted)
    specs;
  (* a deadlocking handshake passes its safety checks *)
  let ab = Chan_set.of_names [ "a"; "b" ] in
  let defs =
    Defs.empty
    |> Defs.define "l"
         (Process.send "a" (Expr.int 0)
            (Process.recv "b" "x" Vset.Nat (Process.ref_ "l")))
    |> Defs.define "r"
         (Process.send "b" (Expr.int 0)
            (Process.recv "a" "x" Vset.Nat (Process.ref_ "r")))
  in
  let net = Process.Par (ab, ab, Process.ref_ "l", Process.ref_ "r") in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  result "  crossed handshake: deadlocked=%b, yet sat-check of output<=input: %s\n"
    (Step.is_deadlocked cfg net)
    (Format.asprintf "%a" Sat.pp_outcome
       (Sat.check ~depth:4 cfg net Paper.Copier.network_spec))

(* ---------------------------------------------------------------------- *)
(* E8: STOP | P = P in the model                                           *)
(* ---------------------------------------------------------------------- *)

let e8_nondet_defect () =
  section "E8: §4 defect 2 — STOP | P is identically P in the prefix-closure model";
  let sampler = Sampler.nat_bound 2 in
  List.iter
    (fun (name, defs, p) ->
      let dcfg = Denote.config ~sampler defs in
      result "  STOP | %-18s = %-18s at depths 1..6: %s\n" name name
        (ok
           (List.for_all
              (fun depth -> Equiv.stop_choice_identity ~depth dcfg p)
              [ 1; 2; 3; 4; 5; 6 ])))
    [
      ("copier", Paper.Copier.defs, Paper.Copier.copier);
      ("receiver", Paper.Protocol.defs, Paper.Protocol.receiver);
      ("copier-network", Paper.Copier.defs, Paper.Copier.network);
    ];
  (* absorption of a branch that deadlocks after common behaviour *)
  let p =
    Process.send "a" (Expr.int 0) (Process.send "b" (Expr.int 1) Process.Stop)
  in
  let q = Process.send "a" (Expr.int 0) Process.Stop in
  result "  (a!0 -> STOP | a!0 -> b!1 -> STOP) = (a!0 -> b!1 -> STOP): %s\n"
    (ok (Equiv.choice_absorption ~depth:5 (Denote.config ~sampler Defs.empty) q p))

(* ---------------------------------------------------------------------- *)
(* E9: the refusals extension repairs the §4 defect                        *)
(* ---------------------------------------------------------------------- *)

let e9_failures_extension () =
  section
    "E9 (extension): stable failures — the 'more realistic model of \
non-determinism' of §4";
  let sampler = Sampler.nat_bound 2 in
  List.iter
    (fun (name, defs, p) ->
      let cfg = Step.config ~sampler defs in
      result
        "  %-18s trace model: STOP|P = P;  failures model distinguishes: %b\n"
        name
        (Failures.distinguishes_stop_choice cfg ~depth:3 p))
    [
      ("copier", Paper.Copier.defs, Paper.Copier.copier);
      ("receiver", Paper.Protocol.defs, Paper.Protocol.receiver);
      ("a!0 -> STOP", Defs.empty, Process.send "a" (Expr.int 0) Process.Stop);
    ];
  (* deadlock becomes expressible: the crossed handshake *)
  let ab = Chan_set.of_names [ "a"; "b" ] in
  let defs =
    Defs.empty
    |> Defs.define "l"
         (Process.send "a" (Expr.int 0)
            (Process.recv "b" "x" Vset.Nat (Process.ref_ "l")))
    |> Defs.define "r"
         (Process.send "b" (Expr.int 0)
            (Process.recv "a" "x" Vset.Nat (Process.ref_ "r")))
  in
  let net = Process.Par (ab, ab, Process.ref_ "l", Process.ref_ "r") in
  let cfg = Step.config ~sampler defs in
  (match Failures.can_deadlock cfg ~depth:3 net with
  | Some s ->
    result "  crossed handshake: failures model reports deadlock after %s\n"
      (Trace.to_string s)
  | None -> result "  crossed handshake: FAILED to report the deadlock\n");
  (match
     Failures.can_deadlock ~choice:`Internal cfg ~depth:3
       (Process.Choice (Process.Stop, Process.ref_ "l"))
   with
  | Some [] ->
    result "  STOP | l: immediate deadlock reported (internal reading)\n"
  | _ -> result "  STOP | l: FAILED\n");
  match
    Failures.can_deadlock
      (Step.config ~sampler Paper.Protocol.defs)
      ~depth:3 Paper.Protocol.protocol
  with
  | None -> result "  protocol: no reachable deadlock (depth 3)\n"
  | Some s ->
    result "  protocol: unexpected deadlock after %s\n" (Trace.to_string s)

(* ---------------------------------------------------------------------- *)
(* E10: mutation kill matrix                                               *)
(* ---------------------------------------------------------------------- *)

(* Can the tooling detect a single-point fault injected into the
   protocol?  Three detectors, in the order a user would run them:
   bounded model checking of the end-to-end spec, the proof checker
   (does the paper's proof still go through?), and — for the faults
   partial correctness provably cannot see (§4) — the refusals
   extension's deadlock detection. *)
let e10_mutations () =
  section "E10: mutation kill matrix (protocol, single-point faults)";
  let module P = Paper.Protocol in
  let spec = P.protocol_spec in
  let totals = Hashtbl.create 8 in
  let bump key =
    Hashtbl.replace totals key (1 + Option.value ~default:0 (Hashtbl.find_opt totals key))
  in
  let classify (mutant, defs') =
    let cfg = Step.config ~sampler:(Sampler.nat_bound 2) ~hide_fuel:8 defs' in
    let killed_by_sat =
      match Sat.check ~depth:5 cfg (Process.ref_ "protocol") spec with
      | Sat.Fails _ -> true
      | Sat.Holds _ -> false
      | exception _ -> true (* e.g. the mutant became unproductive *)
    in
    let killed_by_proof =
      not
        (Result.is_ok
           (Tactic.prove_and_check ~tables:P.tables (Sequent.context defs')
              (Sequent.Holds (Process.ref_ "protocol", spec))))
    in
    let killed_by_refusals =
      match Failures.can_deadlock cfg ~depth:3 (Process.ref_ "protocol") with
      | Some _ -> true
      | None -> false
      | exception _ -> true
    in
    let verdict =
      if killed_by_sat then "killed by sat-check"
      else if killed_by_proof then "killed by proof failure"
      else if killed_by_refusals then "killed only by refusals (§4!)"
      else "SURVIVED"
    in
    bump (mutant.Mutate.operator, verdict);
    (mutant.Mutate.description, verdict)
  in
  let all_mutants =
    List.concat_map
      (fun name -> Mutate.mutate_def P.defs name)
      [ "sender"; "q"; "receiver" ]
  in
  let classified = List.map classify all_mutants in
  result "  %d mutants over sender, q, receiver\n" (List.length classified);
  let op_name = function
    | `Value -> "value"
    | `Channel -> "channel"
    | `Branch -> "branch"
    | `Truncate -> "truncate"
  in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort compare
  |> List.iter (fun ((op, verdict), n) ->
         result "  %-10s %-32s %d\n" (op_name op) verdict n);
  List.iter
    (fun (d, v) ->
      if v = "SURVIVED" then result "  survivor: %s\n" d)
    classified

(* ---------------------------------------------------------------------- *)
(* E11: compositional proof vs state-space growth                          *)
(* ---------------------------------------------------------------------- *)

(* The deepest point of the paper: the parallelism rule proves a network
   from per-component invariants, so proof size grows with the number of
   components while the state space grows with their product.  Measured
   on the n-stage copier chain. *)
let e11_compositionality ?(sizes = [ 1; 2; 3; 4; 6; 8; 12 ]) () =
  section "E11: compositional proofs vs state explosion (n-stage chain)";
  result "  %4s %10s %12s %14s %14s %10s\n" "n" "LTS states" "proof rules"
    "sat-check(ms)" "proof(ms)" "status";
  List.iter
    (fun n ->
      let defs, chain = Paper.Copier.chain_defs n in
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
      let stage_spec i =
        Assertion.Prefix
          ( Term.Chan (Chan_expr.indexed "c" (Expr.int i)),
            Term.Chan (Chan_expr.indexed "c" (Expr.int (i - 1))) )
      in
      let tables =
        Tactic.tables
          ~invariants:
            (List.init n (fun i ->
                 (Paper.Copier.stage_name (i + 1), stage_spec (i + 1))))
          ()
      in
      let states =
        match chain with
        | Process.Hide (_, network) ->
          Lts.num_states (Lts.explore ~max_states:100000 cfg network)
        | _ -> 0
      in
      let t0 = Unix.gettimeofday () in
      let sat_ok =
        if n <= 6 then
          match Sat.check ~depth:6 cfg chain (Paper.Copier.chain_spec n) with
          | Sat.Holds _ -> true
          | Sat.Fails _ -> false
        else true (* beyond n=6 bounded checking is already impractical *)
      in
      let sat_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let t1 = Unix.gettimeofday () in
      let proof =
        Tactic.prove_and_check ~tables (Sequent.context defs)
          (Sequent.Holds (chain, Paper.Copier.chain_spec n))
      in
      let proof_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
      match proof with
      | Ok (p, _) ->
        result "  %4d %10d %12d %14.1f %14.1f %10s\n" n states
          (Proof.size p)
          (if n <= 6 then sat_ms else Float.nan)
          proof_ms
          (ok sat_ok)
      | Error m -> result "  %4d PROOF FAILED: %s\n" n m)
    sizes

(* ---------------------------------------------------------------------- *)
(* A1/A2: ablations of design choices                                      *)
(* ---------------------------------------------------------------------- *)

(* A1: what does the prover's syntactic phase buy?  Disable it and
   every obligation falls through to bounded testing. *)
let a1_prover_ablation () =
  section "A1 (ablation): obligation prover with/without the syntactic phase";
  let run name defs tables p spec =
    List.iter
      (fun (mode, config) ->
        let t0 = Unix.gettimeofday () in
        match
          Tactic.prove_and_check ~config ~tables (Sequent.context defs)
            (Sequent.Holds (p, spec))
        with
        | Ok (_, report) ->
          result "  %-28s %-22s %6.1f ms, %d/%d obligations by testing\n" name
            mode
            ((Unix.gettimeofday () -. t0) *. 1000.0)
            (Check.tested_obligations report)
            (List.length report.Check.obligations)
        | Error m -> result "  %-28s %-22s FAILED: %s\n" name mode m)
      [
        ("with syntactic rules", Csp_assertion.Prover.default_config);
        ( "testing only",
          { Csp_assertion.Prover.default_config with syntactic_phase = false }
        );
      ]
  in
  run "copier/wire<=input" Paper.Copier.defs Paper.Copier.tables
    Paper.Copier.copier Paper.Copier.copier_spec;
  run "sender/Table-1" Paper.Protocol.defs Paper.Protocol.tables
    Paper.Protocol.sender Paper.Protocol.sender_spec

(* A2: prefix closures as tries vs. as plain sorted trace lists. *)
module Naive = struct
  type t = Csp_trace.Trace.t list (* sorted, deduplicated, prefix-closed *)

  let of_closure c = List.sort_uniq Trace.compare (Closure.to_traces c)
  let union a b = List.sort_uniq Trace.compare (a @ b)
  let mem s (t : t) = List.exists (Trace.equal s) t

  let hide in_c (t : t) =
    List.sort_uniq Trace.compare (List.map (Trace.hide in_c) t)
end

let a2_closure_ablation () =
  section "A2 (ablation): trie-based closures vs sorted trace lists";
  let cfg = Step.config ~sampler:(Sampler.nat_bound 3) Paper.Copier.defs in
  let trie = Step.traces cfg ~depth:8 Paper.Copier.copier in
  let listed = Naive.of_closure trie in
  result "  %d traces at depth 8\n" (Closure.cardinal trie);
  let time name f =
    let t0 = Unix.gettimeofday () in
    let iters = 200 in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    result "  %-34s %8.1f us/op\n" name
      ((Unix.gettimeofday () -. t0) *. 1_000_000.0 /. float_of_int iters)
  in
  let in_wire c = Channel.base c = "wire" in
  let probe = List.nth listed (List.length listed / 2) in
  time "trie union" (fun () -> Closure.union trie trie);
  time "list union" (fun () -> Naive.union listed listed);
  time "trie mem" (fun () -> Closure.mem probe trie);
  time "list mem" (fun () -> Naive.mem probe listed);
  time "trie hide" (fun () -> Closure.hide in_wire trie);
  time "list hide" (fun () -> Naive.hide in_wire listed)

(* ---------------------------------------------------------------------- *)
(* P8: hash-consed kernel vs the retained naive reference                  *)
(* ---------------------------------------------------------------------- *)

(* The "old" side of the comparison re-runs the pipelines on
   [Closure_ref] — the pre-hash-consing trie, kept in the library as an
   executable specification.  Two workloads: the E11 chain's bounded
   sat check (closure construction dominates) and the protocol's
   denotational fixpoint run for the full [depth + hide_extra + 1]
   rounds, as [denote] did before convergence detection. *)
module Ref_pipeline = struct
  (* [Step.traces] with the reference trie: same transition relation,
     same (state, depth, budget) memo, only the closure representation
     differs. *)
  let traces cfg ~depth p =
    let memo : (string * int * int, Closure_ref.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let rec go d hidden_budget p =
      if d <= 0 then Closure_ref.empty
      else
        let key = (Process.to_string p, d, hidden_budget) in
        match Hashtbl.find_opt memo key with
        | Some c -> c
        | None ->
          let c =
            List.fold_left
              (fun acc (e, vis, p') ->
                match vis with
                | Step.Visible ->
                  Closure_ref.union acc
                    (Closure_ref.prefix e (go (d - 1) cfg.Step.hide_fuel p'))
                | Step.Hidden ->
                  if hidden_budget <= 0 then acc
                  else Closure_ref.union acc (go d (hidden_budget - 1) p'))
              Closure_ref.empty (Step.transitions cfg p)
          in
          Hashtbl.add memo key c;
          c
    in
    go depth cfg.Step.hide_fuel p

  (* [Sat.check] before streaming: materialise the member traces and
     test the assertion on each. *)
  let check ?nat_bound cfg ~depth p assertion =
    let closure = traces cfg ~depth p in
    let ctx0 = Term.ctx ?nat_bound () in
    List.for_all
      (fun s ->
        Assertion.eval { ctx0 with Term.hist = History.of_trace s } assertion)
      (Closure_ref.to_traces closure)

  (* The denotational equations over the reference trie. *)
  let rec eval defs sampler hide_extra env depth p =
    let k = eval defs sampler hide_extra in
    if depth <= 0 then Closure_ref.empty
    else
      match p with
      | Process.Stop -> Closure_ref.empty
      | Process.Output (c, e, cont) ->
        Closure_ref.prefix
          (Event.make
             (Chan_expr.eval Valuation.empty c)
             (Expr.eval Valuation.empty e))
          (k env (depth - 1) cont)
      | Process.Input (c, x, m, cont) ->
        let chan = Chan_expr.eval Valuation.empty c in
        Closure_ref.union_all
          (List.map
             (fun v ->
               Closure_ref.prefix (Event.make chan v)
                 (k env (depth - 1) (Process.subst_value x v cont)))
             (Sampler.sample sampler m))
      | Process.Choice (p1, p2) ->
        Closure_ref.union (k env depth p1) (k env depth p2)
      | Process.Par (xa, ya, p1, p2) ->
        Closure_ref.truncate depth
          (Closure_ref.par
             ~in_x:(fun c -> Chan_set.mem xa c)
             ~in_y:(fun c -> Chan_set.mem ya c)
             (k env depth p1) (k env depth p2))
      | Process.Hide (l, p1) ->
        Closure_ref.truncate depth
          (Closure_ref.hide
             (fun c -> Chan_set.mem l c)
             (k env (depth + hide_extra) p1))
      | Process.Ref (n, arg) ->
        Closure_ref.truncate depth
          (env n (Option.map (Expr.eval Valuation.empty) arg))

  (* Fixed-iteration fixpoint: always [env_depth + 1] rounds, with the
     per-level memo the old [denote] had — no convergence detection. *)
  let denote defs sampler ~hide_extra ~depth p =
    let env_depth = depth + hide_extra in
    let next prev =
      let table = Hashtbl.create 16 in
      fun name arg ->
        let key = (name, Option.map Value.to_string arg) in
        match Hashtbl.find_opt table key with
        | Some c -> c
        | None ->
          let c =
            eval defs sampler hide_extra prev env_depth
              (Defs.unfold defs name arg)
          in
          Hashtbl.add table key c;
          c
    in
    let rec chain env i = if i <= 0 then env else chain (next env) (i - 1) in
    let env = chain (fun _ _ -> Closure_ref.empty) (env_depth + 1) in
    eval defs sampler hide_extra env depth p
end

(* Wall-clock of the best of [repeats] runs, in ms.  The hash-consed
   side clears its global caches before every run, so the numbers are
   cold — sharing within one run is the feature being measured, reuse
   across runs is not. *)
let time_ms ?(repeats = 2) ?(cold = false) f =
  let best = ref infinity in
  for _ = 1 to repeats do
    if cold then Closure.clear_caches ();
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1000.0

type p8_row = {
  p8_name : string;
  p8_n : int;
  p8_old_ms : float;
  p8_new_ms : float;
  p8_nodes : int;
  p8_hit_rate : float;
}

let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"p8_hashcons\",\n  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"n\": %d, \"old_ms\": %.3f, \"new_ms\": \
         %.3f, \"speedup\": %.2f, \"nodes\": %d, \"memo_hit_rate\": %.3f }%s\n"
        r.p8_name r.p8_n r.p8_old_ms r.p8_new_ms
        (r.p8_old_ms /. r.p8_new_ms)
        r.p8_nodes r.p8_hit_rate
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"snapshot\": %s\n}\n" (Obs.snapshot_json ());
  close_out oc

let p8_hashcons ?(smoke = false) () =
  section "P8: hash-consed closure kernel vs naive reference trie";
  result "  %-22s %4s %12s %12s %9s %9s %9s\n" "workload" "n" "old(ms)"
    "new(ms)" "speedup" "nodes" "hit-rate";
  let rows = ref [] in
  (* The stats pass runs first — the weak unique table survives
     [clear_caches] (live closures must stay interned), so only the
     first run of a workload creates nodes; later timing runs re-find
     them, which is the very effect being measured. *)
  let row label run_new run_old n =
    Closure.clear_caches ();
    let s0 = Closure.stats () in
    run_new ();
    let s1 = Closure.stats () in
    let nodes = s1.Closure.nodes - s0.Closure.nodes in
    let hits = s1.Closure.memo_hits - s0.Closure.memo_hits
    and misses = s1.Closure.memo_misses - s0.Closure.memo_misses in
    let hit_rate =
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses)
    in
    let old_ms = time_ms run_old in
    let new_ms = time_ms ~cold:true run_new in
    result "  %-22s %4d %12.1f %12.1f %8.1fx %9d %8.1f%%\n" label n old_ms
      new_ms (old_ms /. new_ms) nodes (100.0 *. hit_rate);
    rows :=
      {
        p8_name = label;
        p8_n = n;
        p8_old_ms = old_ms;
        p8_new_ms = new_ms;
        p8_nodes = nodes;
        p8_hit_rate = hit_rate;
      }
      :: !rows
  in
  (* E11 chain: bounded sat check, construction-dominated *)
  let chain_sizes = if smoke then [ 2; 3 ] else [ 2; 4; 6 ] in
  let depth = 6 in
  List.iter
    (fun n ->
      let defs, chain = Paper.Copier.chain_defs n in
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
      let spec = Paper.Copier.chain_spec n in
      let new_side () = ignore (Sys.opaque_identity (Sat.check ~depth cfg chain spec)) in
      let old_side () =
        ignore (Sys.opaque_identity (Ref_pipeline.check cfg ~depth chain spec))
      in
      row "e11-chain-sat" new_side old_side n)
    chain_sizes;
  (* protocol fixpoint: full-round naive chain vs converging denote *)
  let fix_depth = if smoke then 3 else 4 in
  let sampler = Sampler.nat_bound 2 in
  let new_side () =
    ignore
      (Sys.opaque_identity
         (Denote.denote
            (Denote.config ~sampler Paper.Protocol.defs)
            ~depth:fix_depth Paper.Protocol.network))
  in
  let old_side () =
    ignore
      (Sys.opaque_identity
         (Ref_pipeline.denote Paper.Protocol.defs sampler ~hide_extra:8
            ~depth:fix_depth Paper.Protocol.network))
  in
  row "protocol-fixpoint" new_side old_side fix_depth;
  write_bench_json "BENCH_closure.json" (List.rev !rows);
  result "  wrote BENCH_closure.json\n"

(* ---------------------------------------------------------------------- *)
(* P10: interned process IR vs the pre-interning Process-keyed engine     *)
(* ---------------------------------------------------------------------- *)

(* The "old" side replicates the engine as it stood before the process
   IR: plain [Process.t] states, no unfold/transition caches, state
   tables keyed on polymorphic equality with [Process.hash], and
   partition signatures deduplicated with polymorphic [compare].  The
   transition relation computed is identical — only the representation
   of states differs. *)
module Plain_pipeline = struct
  module Valuation = Csp_lang.Valuation

  let eval_chan c = Chan_expr.eval Valuation.empty c
  let eval_expr e = Expr.eval Valuation.empty e

  let rec sync_on cfg fuel (e : Event.t) p : Process.t list =
    match p with
    | Process.Stop -> []
    | Process.Output (c, ex, k) ->
      if
        Channel.equal (eval_chan c) e.Event.chan
        && Value.equal (eval_expr ex) e.Event.value
      then [ k ]
      else []
    | Process.Input (c, x, m, k) ->
      if Channel.equal (eval_chan c) e.Event.chan && Vset.mem m e.Event.value
      then [ Process.subst_value x e.Event.value k ]
      else []
    | Process.Choice (p1, p2) -> sync_on cfg fuel e p1 @ sync_on cfg fuel e p2
    | Process.Par (xa, ya, p1, p2) ->
      let in_x = Chan_set.mem xa e.Event.chan
      and in_y = Chan_set.mem ya e.Event.chan in
      if in_x && in_y then
        List.concat_map
          (fun p1' ->
            List.map
              (fun p2' -> Process.Par (xa, ya, p1', p2'))
              (sync_on cfg fuel e p2))
          (sync_on cfg fuel e p1)
      else if in_x then
        List.map
          (fun p1' -> Process.Par (xa, ya, p1', p2))
          (sync_on cfg fuel e p1)
      else if in_y then
        List.map
          (fun p2' -> Process.Par (xa, ya, p1, p2'))
          (sync_on cfg fuel e p2)
      else []
    | Process.Hide (l, p1) ->
      if Chan_set.mem l e.Event.chan then []
      else List.map (fun p1' -> Process.Hide (l, p1')) (sync_on cfg fuel e p1)
    | Process.Ref (n, arg) ->
      if fuel <= 0 then raise (Step.Unproductive n)
      else
        sync_on cfg (fuel - 1) e
          (Defs.unfold_ref cfg.Step.defs Valuation.empty n arg)

  let rec transitions_fuel cfg fuel p :
      (Event.t * Step.visibility * Process.t) list =
    match p with
    | Process.Stop -> []
    | Process.Output (c, e, k) ->
      [ (Event.make (eval_chan c) (eval_expr e), Step.Visible, k) ]
    | Process.Input (c, x, m, k) ->
      let chan = eval_chan c in
      List.map
        (fun v -> (Event.make chan v, Step.Visible, Process.subst_value x v k))
        (Sampler.sample cfg.Step.sampler m)
    | Process.Choice (p1, p2) ->
      transitions_fuel cfg fuel p1 @ transitions_fuel cfg fuel p2
    | Process.Par (xa, ya, p1, p2) ->
      let t1 = transitions_fuel cfg fuel p1
      and t2 = transitions_fuel cfg fuel p2 in
      let left =
        List.concat_map
          (fun ((e : Event.t), vis, p1') ->
            match vis with
            | Step.Hidden -> [ (e, Step.Hidden, Process.Par (xa, ya, p1', p2)) ]
            | Step.Visible ->
              if Chan_set.mem ya e.Event.chan then
                List.map
                  (fun p2' -> (e, Step.Visible, Process.Par (xa, ya, p1', p2')))
                  (sync_on cfg fuel e p2)
              else [ (e, Step.Visible, Process.Par (xa, ya, p1', p2)) ])
          t1
      in
      let right =
        List.concat_map
          (fun ((e : Event.t), vis, p2') ->
            match vis with
            | Step.Hidden -> [ (e, Step.Hidden, Process.Par (xa, ya, p1, p2')) ]
            | Step.Visible ->
              if Chan_set.mem xa e.Event.chan then
                List.map
                  (fun p1' -> (e, Step.Visible, Process.Par (xa, ya, p1', p2')))
                  (sync_on cfg fuel e p1)
              else [ (e, Step.Visible, Process.Par (xa, ya, p1, p2')) ])
          t2
      in
      let triple_equal (e1, v1, q1) (e2, v2, q2) =
        Event.equal e1 e2 && v1 = v2 && Process.equal q1 q2
      in
      List.rev
        (List.fold_left
           (fun acc t ->
             if List.exists (triple_equal t) acc then acc else t :: acc)
           [] (left @ right))
    | Process.Hide (l, p1) ->
      List.map
        (fun ((e : Event.t), vis, p1') ->
          let vis = if Chan_set.mem l e.Event.chan then Step.Hidden else vis in
          (e, vis, Process.Hide (l, p1')))
        (transitions_fuel cfg fuel p1)
    | Process.Ref (n, arg) ->
      if fuel <= 0 then raise (Step.Unproductive n)
      else
        transitions_fuel cfg (fuel - 1)
          (Defs.unfold_ref cfg.Step.defs Valuation.empty n arg)

  let transitions cfg p = transitions_fuel cfg cfg.Step.unfold_fuel p

  module Proc_tbl = Hashtbl.Make (struct
    type t = Process.t

    let equal = Stdlib.( = )
    let hash = Process.hash
  end)

  (* the pre-IR [Step.traces]: per-call interning table, transitions
     re-derived once per state via a local memo *)
  let traces cfg ~depth p =
    let ids = Proc_tbl.create 256 in
    let next_id = ref 0 in
    let intern q =
      match Proc_tbl.find_opt ids q with
      | Some id -> id
      | None ->
        let id = !next_id in
        incr next_id;
        Proc_tbl.add ids q id;
        id
    in
    let trans_memo :
        (int, (Event.t * Step.visibility * int * Process.t) list) Hashtbl.t =
      Hashtbl.create 256
    in
    let transitions_of id q =
      match Hashtbl.find_opt trans_memo id with
      | Some ts -> ts
      | None ->
        let ts =
          List.map
            (fun (e, vis, q') -> (e, vis, intern q', q'))
            (transitions cfg q)
        in
        Hashtbl.add trans_memo id ts;
        ts
    in
    let memo : (int * int * int, Closure.t) Hashtbl.t = Hashtbl.create 256 in
    let rec go d hidden_budget id q =
      if d <= 0 then Closure.empty
      else
        let key = (id, d, hidden_budget) in
        match Hashtbl.find_opt memo key with
        | Some c -> c
        | None ->
          let c =
            List.fold_left
              (fun acc (e, vis, id', q') ->
                match vis with
                | Step.Visible ->
                  Closure.union acc
                    (Closure.prefix e (go (d - 1) cfg.Step.hide_fuel id' q'))
                | Step.Hidden ->
                  if hidden_budget <= 0 then acc
                  else Closure.union acc (go d (hidden_budget - 1) id' q'))
              Closure.empty (transitions_of id q)
          in
          Hashtbl.add memo key c;
          c
    in
    go depth cfg.Step.hide_fuel (intern p) p

  (* the pre-IR [Lts.explore]: states canonicalised by structural
     equality in a polymorphic-equality table *)
  let explore ?(max_states = 2000) cfg p : Lts.t =
    let ids : int Proc_tbl.t = Proc_tbl.create 64 in
    let states = ref [] and n_states = ref 0 in
    let intern q =
      match Proc_tbl.find_opt ids q with
      | Some i -> (i, false)
      | None ->
        let i = !n_states in
        Proc_tbl.add ids q i;
        states := q :: !states;
        incr n_states;
        (i, true)
    in
    let trans = ref [] in
    let queue = Queue.create () in
    let complete = ref true in
    let initial, _ = intern p in
    Queue.add (initial, p) queue;
    while not (Queue.is_empty queue) do
      let i, q = Queue.pop queue in
      List.iter
        (fun (e, vis, q') ->
          if !n_states >= max_states then begin
            match Proc_tbl.find_opt ids q' with
            | Some j ->
              trans :=
                {
                  Lts.source = i;
                  event = e;
                  visible = (vis = Step.Visible);
                  target = j;
                }
                :: !trans
            | None -> complete := false
          end
          else begin
            let j, fresh = intern q' in
            trans :=
              {
                Lts.source = i;
                event = e;
                visible = (vis = Step.Visible);
                target = j;
              }
              :: !trans;
            if fresh then Queue.add (j, q') queue
          end)
        (transitions cfg q)
    done;
    Lts.make ~initial
      ~states:(Array.of_list (List.rev !states))
      ~transitions:(List.rev !trans) ~complete:!complete ()

  (* the pre-IR [Bisim.classes_of]: signatures deduplicated and keyed
     with polymorphic compare/hash on (event, visibility, class) *)
  let signatures (t : Lts.t) (classes : int array) =
    let n = Array.length t.Lts.states in
    let sigs = Array.make n [] in
    List.iter
      (fun (tr : Lts.transition) ->
        sigs.(tr.Lts.source) <-
          ((tr.Lts.event, tr.Lts.visible), classes.(tr.Lts.target))
          :: sigs.(tr.Lts.source))
      t.Lts.transitions;
    Array.map (List.sort_uniq compare) sigs

  let classes_of (t : Lts.t) =
    let n = Array.length t.Lts.states in
    let classes = Array.make n 0 in
    let num = ref (if n = 0 then 0 else 1) in
    let changed = ref true in
    while !changed do
      let sigs = signatures t classes in
      let table = Hashtbl.create 16 in
      let next = ref 0 in
      let classes' =
        Array.init n (fun i ->
            let key = (classes.(i), sigs.(i)) in
            match Hashtbl.find_opt table key with
            | Some c -> c
            | None ->
              let c = !next in
              incr next;
              Hashtbl.add table key c;
              c)
      in
      changed := !next <> !num;
      num := !next;
      Array.blit classes' 0 classes 0 n
    done;
    classes
end

type p10_row = {
  p10_name : string;
  p10_n : int;
  p10_old_ms : float;
  p10_new_ms : float;
  p10_intern_nodes : int;
  p10_table_len : int;
  p10_hit_rate : float;
}

let write_p10_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"p10_procir\",\n  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"n\": %d, \"old_ms\": %.3f, \"new_ms\": \
         %.3f, \"speedup\": %.2f, \"intern_nodes\": %d, \"intern_table\": \
         %d, \"memo_hit_rate\": %.3f }%s\n"
        r.p10_name r.p10_n r.p10_old_ms r.p10_new_ms
        (r.p10_old_ms /. r.p10_new_ms)
        r.p10_intern_nodes r.p10_table_len r.p10_hit_rate
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"snapshot\": %s\n}\n" (Obs.snapshot_json ());
  close_out oc

let p10_procir ?(smoke = false) () =
  section "P10: interned process IR vs Process-keyed state tables";
  result "  %-22s %4s %12s %12s %9s %9s %9s\n" "workload" "n" "old(ms)"
    "new(ms)" "speedup" "interned" "hit-rate";
  let rows = ref [] in
  (* One instrumented pass first: count nodes interned and the step
     cache hit-rate for the workload, then time both sides.  The new
     side re-creates its [Step.config] per run, so per-config caches
     never carry over between timed runs; the weak unique table is
     global and survives, exactly like the closure kernel's in P8. *)
  let row label run_new run_old n =
    Step.reset_stats ();
    (* The unique table is weak and global: nodes interned by earlier
       experiments/rows survive as long as something references them,
       so without a collection the instrumented pass re-finds old
       nodes and reports an intern_nodes delta of ~0 for every row
       after the first.  Two full majors (weak tables need a second
       pass to flush emptied buckets) make the delta count this
       workload's own interning. *)
    Gc.full_major ();
    Gc.full_major ();
    let i0 = Proc.stats () in
    run_new ();
    let i1 = Proc.stats () in
    let s = Step.stats () in
    let hits = s.Step.unfold_hits + s.Step.trans_hits
    and misses = s.Step.unfold_misses + s.Step.trans_misses in
    let hit_rate =
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses)
    in
    let old_ms = time_ms run_old in
    let new_ms = time_ms run_new in
    result "  %-22s %4d %12.1f %12.1f %8.1fx %9d %8.1f%%\n" label n old_ms
      new_ms (old_ms /. new_ms)
      (i1.Proc.nodes - i0.Proc.nodes)
      (100.0 *. hit_rate);
    rows :=
      {
        p10_name = label;
        p10_n = n;
        p10_old_ms = old_ms;
        p10_new_ms = new_ms;
        p10_intern_nodes = i1.Proc.nodes - i0.Proc.nodes;
        p10_table_len = i1.Proc.table_len;
        p10_hit_rate = hit_rate;
      }
      :: !rows
  in
  let sampler = Sampler.nat_bound 2 in
  (* E11 chain: trace enumeration and LTS exploration + bisimulation
     refinement on the hidden network's state space *)
  let chain_sizes = if smoke then [ 2; 3 ] else [ 2; 4; 6; 8 ] in
  List.iter
    (fun n ->
      let defs, chain = Paper.Copier.chain_defs n in
      row "chain-traces"
        (fun () ->
          ignore
            (Sys.opaque_identity
               (Step.traces (Step.config ~sampler defs) ~depth:6 chain)))
        (fun () ->
          ignore
            (Sys.opaque_identity
               (Plain_pipeline.traces (Step.config ~sampler defs) ~depth:6
                  chain)))
        n;
      let network =
        match chain with Process.Hide (_, net) -> net | p -> p
      in
      row "chain-lts-bisim"
        (fun () ->
          let cfg = Step.config ~sampler defs in
          let lts = Lts.explore ~max_states:100000 cfg network in
          ignore (Sys.opaque_identity (Bisim.classes_of lts)))
        (fun () ->
          let cfg = Step.config ~sampler defs in
          let lts = Plain_pipeline.explore ~max_states:100000 cfg network in
          ignore (Sys.opaque_identity (Plain_pipeline.classes_of lts)))
        n)
    chain_sizes;
  (* the protocol: a small cyclic state space with hidden moves *)
  row "protocol-lts-bisim"
    (fun () ->
      let cfg = Step.config ~sampler Paper.Protocol.defs in
      let lts = Lts.explore ~max_states:5000 cfg Paper.Protocol.protocol in
      ignore (Sys.opaque_identity (Bisim.classes_of lts)))
    (fun () ->
      let cfg = Step.config ~sampler Paper.Protocol.defs in
      let lts =
        Plain_pipeline.explore ~max_states:5000 cfg Paper.Protocol.protocol
      in
      ignore (Sys.opaque_identity (Plain_pipeline.classes_of lts)))
    0;
  write_p10_json "BENCH_procir.json" (List.rev !rows);
  result "  wrote BENCH_procir.json\n"

(* ---------------------------------------------------------------------- *)
(* P11: parallel LTS exploration — scaling over domain counts              *)
(* ---------------------------------------------------------------------- *)

type p11_row = {
  p11_workload : string;
  p11_domains : int;
  p11_ms : float;
  p11_states : int;
  p11_transitions : int;
  p11_speedup : float;  (* vs the 1-domain run of the same workload *)
  p11_identical : bool;  (* DOT output byte-identical to sequential *)
}

type p11_warm = {
  warm_workload : string;
  warm_cold_ms : float;
  warm_warm_ms : float;
  warm_hits : int;
  warm_misses : int;
}

let write_p11_json path ~host_domains ~underpowered ~warm rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"p11_parallel\",\n  \"host_domains\": %d,\n  \
     \"underpowered_host\": %b,\n  \"results\": [\n"
    host_domains underpowered;
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"workload\": \"%s\", \"domains\": %d, \"ms\": %.3f, \
         \"states\": %d, \"transitions\": %d, \"speedup_vs_seq\": %.2f, \
         \"identical_to_seq\": %b }%s\n"
        r.p11_workload r.p11_domains r.p11_ms r.p11_states r.p11_transitions
        r.p11_speedup r.p11_identical
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"warm_config\": { \"workload\": \"%s\", \"cold_ms\": %.3f, \
     \"warm_ms\": %.3f, \"trans_hits\": %d, \"trans_misses\": %d },\n"
    warm.warm_workload warm.warm_cold_ms warm.warm_warm_ms warm.warm_hits
    warm.warm_misses;
  Printf.fprintf oc "  \"snapshot\": %s\n}\n" (Obs.snapshot_json ());
  close_out oc

let p11_parallel ?(smoke = false) () =
  section "P11: parallel LTS exploration (work-stealing frontier)";
  let host = Domain.recommended_domain_count () in
  (* Cold legs run on fresh configurations (per-config caches empty):
     successor derivation is the work being stolen, and a warm
     trans_cache would reduce every run to table lookups.  The warm
     leg below measures exactly that effect, deliberately. *)
  let workloads =
    let chain n =
      ( Printf.sprintf "copier-chain-%d" n,
        fun () ->
          let defs, net = Paper.Copier.chain_defs n in
          (Step.config ~sampler:(Sampler.nat_bound 2) defs, net) )
    and philosophers n =
      ( Printf.sprintf "philosophers-%d" n,
        fun () ->
          let ph = Paper.Philosophers.make ~n ~left_handed_last:true () in
          ( Step.config ~sampler:(Sampler.nat_bound n) ph.Paper.Philosophers.defs,
            ph.Paper.Philosophers.network ) )
    and token_ring n =
      ( Printf.sprintf "token-ring-%d" n,
        fun () ->
          let m = Models.Token_ring.make ~n in
          ( Step.config ~sampler:(Sampler.nat_bound 2)
              m.Models.Token_ring.defs,
            m.Models.Token_ring.network ) )
    in
    if smoke then [ chain 4; philosophers 3; token_ring 4 ]
    else [ chain 8; philosophers 4; token_ring 10 ]
  in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let max_benched = List.fold_left max 1 domain_counts in
  let underpowered = host < max_benched in
  result "  host_domains: %d (benching up to %d domains)%s\n" host max_benched
    (if underpowered then
       " — UNDERPOWERED HOST: speedups are bounded by 1.0, read them as \
        overhead measurements"
     else "");
  let max_states = 50_000 in
  let rows = ref [] in
  (* Sequential references, one per workload: the byte-identity oracle
     and the speedup baseline. *)
  let references =
    List.map
      (fun (label, mk) ->
        let cfg, net = mk () in
        (label, Lts.to_dot (Lts.explore ~max_states cfg net)))
      workloads
  in
  let seq_ms : (string, float) Hashtbl.t = Hashtbl.create 8 in
  result "  %-20s %8s %10s %8s %8s %10s %10s\n" "workload" "domains" "ms"
    "states" "trans" "speedup" "identical";
  (* One pool per domain count, shared across every workload leg: pool
     construction (domain spawn) is paid once, not once per cell, so
     the timings measure exploration, not setup. *)
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          List.iter
            (fun (label, mk) ->
              let ref_dot = List.assoc label references in
              let run () =
                let cfg, net = mk () in
                Lts.explore ~max_states ~pool cfg net
              in
              (* warm-up, then best-of-2 on cold configurations *)
              let lts = run () in
              let ms =
                let best = ref infinity in
                for _ = 1 to 2 do
                  let t0 = Unix.gettimeofday () in
                  ignore (Sys.opaque_identity (run ()));
                  let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
                  if dt < !best then best := dt
                done;
                !best
              in
              if domains = 1 then Hashtbl.replace seq_ms label ms;
              let identical = String.equal (Lts.to_dot lts) ref_dot in
              let speedup =
                match Hashtbl.find_opt seq_ms label with
                | Some s when ms > 0.0 -> s /. ms
                | _ -> 1.0
              in
              result "  %-20s %8d %10.1f %8d %8d %9.2fx %10b\n" label domains
                ms (Lts.num_states lts) (Lts.num_transitions lts) speedup
                identical;
              rows :=
                {
                  p11_workload = label;
                  p11_domains = domains;
                  p11_ms = ms;
                  p11_states = Lts.num_states lts;
                  p11_transitions = Lts.num_transitions lts;
                  p11_speedup = speedup;
                  p11_identical = identical;
                }
                :: !rows)
            workloads))
    domain_counts;
  (* Warm-config leg: the per-config transition cache pays off only
     when one configuration serves several explorations (repeated
     [cspc graph] queries, refinement checks against the same spec).
     Explore twice on the same configuration and report the second
     run's time and the cache delta — hits > 0 is also the regression
     guard for the cache keying (see test_step). *)
  let warm =
    let label, mk = List.hd workloads in
    let cfg, net = mk () in
    let time f =
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      (Unix.gettimeofday () -. t0) *. 1000.0
    in
    let cold_ms = time (fun () -> Lts.explore ~max_states cfg net) in
    let before = Step.stats () in
    let warm_ms = time (fun () -> Lts.explore ~max_states cfg net) in
    let after = Step.stats () in
    {
      warm_workload = label;
      warm_cold_ms = cold_ms;
      warm_warm_ms = warm_ms;
      warm_hits = after.Step.trans_hits - before.Step.trans_hits;
      warm_misses = after.Step.trans_misses - before.Step.trans_misses;
    }
  in
  result
    "  warm-config (%s): cold %.1f ms, warm %.1f ms — trans-cache %d hits, \
     %d misses on the warm run\n"
    warm.warm_workload warm.warm_cold_ms warm.warm_warm_ms warm.warm_hits
    warm.warm_misses;
  write_p11_json "BENCH_parallel.json" ~host_domains:host ~underpowered ~warm
    (List.rev !rows);
  result "  wrote BENCH_parallel.json\n"

(* ---------------------------------------------------------------------- *)
(* P12: observability overhead — the disabled path must be free            *)
(* ---------------------------------------------------------------------- *)

(* Two measurements, written to BENCH_obs.json:

   - micro: the per-call cost of a dormant [Obs.span] and a live
     [Obs.Counter.incr] (one atomic load / one atomic RMW), measured
     directly;
   - macro: representative workloads (LTS exploration, the denotational
     fixpoint, a bounded sat check) timed with telemetry off and on.
     The off-mode run IS the shipping configuration, so its estimated
     instrumentation cost — span sites crossed × dormant span cost,
     relative to the run time — is the "overhead vs the uninstrumented
     baseline" number the roadmap's ≤2% budget constrains.  The
     enabled-mode column prices the clock reads and event records a
     profiled run pays. *)

type p12_row = {
  p12_name : string;
  p12_disabled_ms : float;
  p12_enabled_ms : float;
  p12_events : int; (* span events one enabled run records *)
  p12_disabled_overhead_pct : float; (* estimated, vs uninstrumented *)
  p12_enabled_overhead_pct : float; (* measured, enabled vs disabled *)
}

let time_ns_per_op ?(iters = 1_000_000) f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let write_p12_json path ~span_ns ~counter_ns rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"p12_obs_overhead\",\n  \
     \"span_disabled_ns_per_call\": %.2f,\n  \
     \"counter_incr_ns_per_call\": %.2f,\n  \"results\": [\n"
    span_ns counter_ns;
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"disabled_ms\": %.3f, \"enabled_ms\": \
         %.3f, \"span_events\": %d, \"disabled_overhead_pct\": %.4f, \
         \"enabled_overhead_pct\": %.2f }%s\n"
        r.p12_name r.p12_disabled_ms r.p12_enabled_ms r.p12_events
        r.p12_disabled_overhead_pct r.p12_enabled_overhead_pct
        (if i = last then "" else ","))
    rows;
  let worst =
    List.fold_left (fun m r -> Float.max m r.p12_disabled_overhead_pct) 0.0 rows
  in
  Printf.fprintf oc
    "  ],\n  \"max_disabled_overhead_pct\": %.4f,\n  \
     \"budget_pct\": 2.0,\n  \"within_budget\": %b\n}\n"
    worst (worst <= 2.0);
  close_out oc;
  worst

let p12_obs_overhead ?(smoke = false) () =
  section "P12: observability overhead (dormant instruments vs profiled runs)";
  let was_enabled = Obs.enabled () in
  Obs.set_enabled false;
  (* micro: dormant span vs live counter *)
  let probe_counter = Obs.Counter.make "bench.p12.probe" in
  let baseline_ns = time_ns_per_op (fun () -> Sys.opaque_identity 0) in
  let span_ns =
    time_ns_per_op (fun () -> Obs.span ~cat:"bench" "noop" (fun () -> 0))
    -. baseline_ns
  in
  let counter_ns =
    time_ns_per_op (fun () -> Obs.Counter.incr probe_counter) -. baseline_ns
  in
  result "  dormant span:     %6.2f ns/call (one atomic load)\n" span_ns;
  result "  counter incr:     %6.2f ns/call (one atomic RMW)\n" counter_ns;
  (* macro workloads: telemetry off (shipping mode) vs on (profiling) *)
  let sampler = Sampler.nat_bound 2 in
  let chain_n = if smoke then 3 else 6 in
  let defs, chain = Paper.Copier.chain_defs chain_n in
  let network = match chain with Process.Hide (_, net) -> net | p -> p in
  let workloads =
    [
      ( Printf.sprintf "chain%d-explore" chain_n,
        fun () ->
          ignore
            (Sys.opaque_identity
               (Lts.explore ~max_states:100_000
                  (Step.config ~sampler defs)
                  network)) );
      ( "protocol-denote",
        fun () ->
          ignore
            (Sys.opaque_identity
               (Denote.denote
                  (Denote.config ~sampler Paper.Protocol.defs)
                  ~depth:(if smoke then 3 else 4)
                  Paper.Protocol.network)) );
      ( Printf.sprintf "chain%d-sat" chain_n,
        fun () ->
          ignore
            (Sys.opaque_identity
               (Sat.check ~depth:6
                  (Step.config ~sampler defs)
                  chain
                  (Paper.Copier.chain_spec chain_n))) );
    ]
  in
  result "  %-18s %12s %12s %10s %12s %12s\n" "workload" "off(ms)" "on(ms)"
    "events" "off-ovh(%)" "on-ovh(%)";
  let rows =
    List.map
      (fun (label, run) ->
        Obs.set_enabled false;
        let disabled_ms = time_ms ~repeats:3 ~cold:true run in
        Obs.set_enabled true;
        Obs.clear_events ();
        Closure.clear_caches ();
        run ();
        let events = Obs.event_count () in
        let enabled_ms = time_ms ~repeats:3 ~cold:true run in
        Obs.set_enabled false;
        Obs.clear_events ();
        (* what the dormant instruments cost the off-mode run: every
           span site crossed still pays one atomic load *)
        let disabled_overhead_pct =
          float_of_int events *. span_ns /. (disabled_ms *. 1e6) *. 100.0
        in
        let enabled_overhead_pct =
          (enabled_ms -. disabled_ms) /. disabled_ms *. 100.0
        in
        result "  %-18s %12.1f %12.1f %10d %12.4f %12.2f\n" label disabled_ms
          enabled_ms events disabled_overhead_pct enabled_overhead_pct;
        {
          p12_name = label;
          p12_disabled_ms = disabled_ms;
          p12_enabled_ms = enabled_ms;
          p12_events = events;
          p12_disabled_overhead_pct = disabled_overhead_pct;
          p12_enabled_overhead_pct = enabled_overhead_pct;
        })
      workloads
  in
  let worst = write_p12_json "BENCH_obs.json" ~span_ns ~counter_ns rows in
  Obs.set_enabled was_enabled;
  result "  wrote BENCH_obs.json (max disabled-mode overhead %.4f%%, budget \
          2%%: %s)\n"
    worst
    (ok (worst <= 2.0))

(* ---------------------------------------------------------------------- *)
(* P13: compiled successor engine vs interpreted exploration               *)
(* ---------------------------------------------------------------------- *)

(* The SPIN-style comparison: one [Compiled.compile] pass flattens the
   reachable state space into CSR successor tables, then every explore
   is array walks over a dense visited set.  The interpreted side runs
   on a fresh configuration per timed run (cold per-config caches —
   the cost one [cspc graph] invocation pays); the compiled side
   amortises its one compile over repeated explores, which is the
   design point, so compile time is reported as its own column. *)

type p13_row = {
  p13_workload : string;
  p13_states : int;
  p13_transitions : int;
  p13_interp_ms : float;
  p13_compile_ms : float;
  p13_compiled_ms : float;
  p13_speedup : float; (* interpreted / compiled explore *)
  p13_interp_sps : float; (* states per second, interpreted *)
  p13_compiled_sps : float; (* states per second, compiled *)
  p13_fallbacks : int;
  p13_identical : bool; (* DOT byte-identical to interpreted *)
}

let write_p13_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"p13_compiled\",\n  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"workload\": \"%s\", \"states\": %d, \"transitions\": %d, \
         \"interpreted_ms\": %.3f, \"compile_ms\": %.3f, \
         \"compiled_explore_ms\": %.3f, \"speedup\": %.2f, \
         \"states_per_sec_interpreted\": %.0f, \"states_per_sec_compiled\": \
         %.0f, \"fallbacks\": %d, \"identical_to_interpreted\": %b }%s\n"
        r.p13_workload r.p13_states r.p13_transitions r.p13_interp_ms
        r.p13_compile_ms r.p13_compiled_ms r.p13_speedup r.p13_interp_sps
        r.p13_compiled_sps r.p13_fallbacks r.p13_identical
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"snapshot\": %s\n}\n" (Obs.snapshot_json ());
  close_out oc

let p13_compiled ?(smoke = false) () =
  section "P13: compiled successor engine (flat tables) vs interpreter";
  let workloads =
    let chain n =
      ( Printf.sprintf "copier-chain-%d" n,
        fun () ->
          let defs, net = Paper.Copier.chain_defs n in
          (Step.config ~sampler:(Sampler.nat_bound 2) defs, net) )
    and philosophers n =
      ( Printf.sprintf "philosophers-%d" n,
        fun () ->
          let ph = Paper.Philosophers.make ~n ~left_handed_last:true () in
          ( Step.config ~sampler:(Sampler.nat_bound n) ph.Paper.Philosophers.defs,
            ph.Paper.Philosophers.network ) )
    in
    if smoke then [ chain 4; philosophers 3 ]
    else [ chain 6; chain 8; philosophers 4 ]
  in
  let max_states = 100_000 in
  let repeats = if smoke then 2 else 3 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let rows = ref [] in
  result "  %-18s %8s %8s %10s %10s %10s %8s %12s %12s\n" "workload" "states"
    "trans" "interp(ms)" "compile" "explore" "speedup" "interp-st/s"
    "compiled-st/s";
  List.iter
    (fun (label, mk) ->
      let reference =
        let cfg, net = mk () in
        Lts.explore ~max_states cfg net
      in
      let ref_dot = Lts.to_dot reference in
      (* interpreted: fresh configuration per run, like one CLI call *)
      let interp_ms =
        best_of (fun () ->
            let cfg, net = mk () in
            Lts.explore ~max_states cfg net)
      in
      (* compiled: one compile amortised over the explores *)
      let cfg, net = mk () in
      let compiled = Compiled.compile cfg net in
      let compiled_ms =
        best_of (fun () -> Lts.explore ~max_states ~compiled cfg net)
      in
      let lts = Lts.explore ~max_states ~compiled cfg net in
      let identical = String.equal (Lts.to_dot lts) ref_dot in
      let states = Lts.num_states lts in
      let sps ms =
        if ms > 0.0 then float_of_int states /. (ms /. 1000.0) else 0.0
      in
      let speedup = if compiled_ms > 0.0 then interp_ms /. compiled_ms else 1.0 in
      result "  %-18s %8d %8d %10.1f %10.1f %10.2f %7.1fx %12.0f %12.0f\n"
        label states (Lts.num_transitions lts) interp_ms
        (Compiled.compile_ms compiled)
        compiled_ms speedup (sps interp_ms) (sps compiled_ms);
      rows :=
        {
          p13_workload = label;
          p13_states = states;
          p13_transitions = Lts.num_transitions lts;
          p13_interp_ms = interp_ms;
          p13_compile_ms = Compiled.compile_ms compiled;
          p13_compiled_ms = compiled_ms;
          p13_speedup = speedup;
          p13_interp_sps = sps interp_ms;
          p13_compiled_sps = sps compiled_ms;
          p13_fallbacks = Compiled.fallbacks compiled;
          p13_identical = identical;
        }
        :: !rows)
    workloads;
  write_p13_json "BENCH_compiled.json" (List.rev !rows);
  result "  wrote BENCH_compiled.json\n"

(* ---------------------------------------------------------------------- *)
(* P14: coverage-guided fuzzing vs blind generation                        *)
(* ---------------------------------------------------------------------- *)

(* The AFL-style claim, measured: at an equal case budget and the same
   seed, the feedback loop (credit coverage-gaining scenario shapes,
   perturb on stagnation) must reach more distinct telemetry features
   than drawing every scenario from the fixed default distribution.
   Both campaigns are fully deterministic, so the curves in
   BENCH_fuzz.json are reproducible bit-for-bit from the seed. *)

type p14_row = {
  p14_mode : string; (* "guided" or "blind" *)
  p14_cases : int;
  p14_elapsed : float;
  p14_execs_per_sec : float;
  p14_distinct : int;
  p14_corpus : int;
  p14_minimised : int;
  p14_curve : (int * int) list;
}

let write_p14_json path ~seed rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"p14_fuzz_coverage\",\n  \"seed\": %d,\n  \"results\": [\n" seed;
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      let curve =
        String.concat ", "
          (List.map (fun (c, d) -> Printf.sprintf "[%d, %d]" c d) r.p14_curve)
      in
      Printf.fprintf oc
        "    { \"mode\": \"%s\", \"cases\": %d, \"elapsed_s\": %.3f, \
         \"execs_per_sec\": %.1f, \"distinct_features\": %d, \
         \"corpus\": %d, \"minimised\": %d, \"curve\": [%s] }%s\n"
        r.p14_mode r.p14_cases r.p14_elapsed r.p14_execs_per_sec
        r.p14_distinct r.p14_corpus r.p14_minimised curve
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"snapshot\": %s\n}\n" (Obs.snapshot_json ());
  close_out oc

let p14_fuzz_coverage ?(smoke = false) () =
  section "P14: coverage-guided fuzzing vs blind generation (equal budget)";
  let module Fuzz = Csp_testkit.Fuzz in
  let seed = 2026 in
  let cases = if smoke then 100 else 300 in
  let cfg = { Fuzz.default_config with Fuzz.seed; max_cases = cases } in
  let campaign ~guided =
    let r, cov = Fuzz.run_coverage ~guided cfg in
    {
      p14_mode = (if guided then "guided" else "blind");
      p14_cases = r.Fuzz.cases;
      p14_elapsed = r.Fuzz.elapsed;
      p14_execs_per_sec =
        (if r.Fuzz.elapsed > 0. then
           float_of_int r.Fuzz.cases /. r.Fuzz.elapsed
         else 0.);
      p14_distinct = cov.Fuzz.distinct;
      p14_corpus = List.length cov.Fuzz.corpus;
      p14_minimised = List.length cov.Fuzz.minimised;
      p14_curve = cov.Fuzz.curve;
    }
  in
  (* blind first so the guided run cannot inherit any advantage from
     process-global registry state (the per-case diff is delta-based,
     but symmetry costs nothing) *)
  let blind = campaign ~guided:false in
  let guided = campaign ~guided:true in
  result "  %-8s %6s %9s %11s %10s %8s %10s\n" "mode" "cases" "time(s)"
    "execs/sec" "features" "corpus" "minimised";
  List.iter
    (fun r ->
      result "  %-8s %6d %9.2f %11.1f %10d %8d %10d\n" r.p14_mode r.p14_cases
        r.p14_elapsed r.p14_execs_per_sec r.p14_distinct r.p14_corpus
        r.p14_minimised)
    [ guided; blind ];
  result "  guided/blind feature ratio: %.2fx%s\n"
    (if blind.p14_distinct > 0 then
       float_of_int guided.p14_distinct /. float_of_int blind.p14_distinct
     else 0.)
    (if guided.p14_distinct > blind.p14_distinct then "" else "  (NO GAIN)");
  write_p14_json "BENCH_fuzz.json" ~seed [ guided; blind ];
  result "  wrote BENCH_fuzz.json\n"

(* ---------------------------------------------------------------------- *)
(* P15: the verification service — replayed traffic, cold vs warm start    *)
(* ---------------------------------------------------------------------- *)

(* [cspc serve] exists to amortise engine warm-up across requests, so
   the two numbers that justify it are sustained throughput on a mixed
   request stream (the same stream `cspc client --bench` and the CI
   smoke leg replay) and the first-request latency of a server started
   [--warm] from a snapshot versus one starting cold.  The probe
   request is a compiled-engine graph exploration — the most
   compile-heavy item in the stream — so cold-vs-warm isolates exactly
   the work the snapshot replays. *)

module Server = Csp_server.Server
module Workload = Csp_server.Workload
module Wjson = Csp_persist.Json

let p15_start_server cfg =
  let t =
    match Server.create cfg with Ok t -> t | Error m -> failwith m
  in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.serve ~ready:(fun () -> Atomic.set ready true) t cfg)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  d

let p15_request socket payload =
  match Workload.connect socket with
  | Error m -> failwith ("p15: connect: " ^ m)
  | Ok conn ->
    let r = Workload.request conn (Wjson.Obj payload) in
    Workload.close conn;
    (match r with
    | Ok resp when Wjson.mem_bool "ok" resp = Some true -> resp
    | Ok resp -> failwith ("p15: request refused: " ^ Wjson.to_string resp)
    | Error m -> failwith ("p15: request: " ^ m))

let p15_stop_server socket d =
  (match Workload.connect socket with
  | Ok conn ->
    ignore (Workload.request conn (Wjson.Obj [ ("op", Wjson.str "shutdown") ]));
    Workload.close conn
  | Error _ -> ());
  Domain.join d

let p15_time_first socket probe =
  match Workload.time_first ~socket probe with
  | Ok (ms, resp) when Wjson.mem_bool "ok" resp = Some true -> ms
  | Ok (_, resp) -> failwith ("p15: probe refused: " ^ Wjson.to_string resp)
  | Error m -> failwith ("p15: probe: " ^ m)

let write_p15_json path ~jobs ~connections ~repeat ~distinct ~cold_ms ~warm_ms
    (s : Workload.summary) =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"p15_serve\",\n  \"jobs\": %d,\n  \"connections\": \
     %d,\n  \"repeat\": %d,\n  \"distinct_items\": %d,\n  \"requests\": \
     %d,\n  \"errors\": %d,\n  \"wall_s\": %.3f,\n  \"req_per_s\": %.1f,\n  \
     \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n  \"cold_first_ms\": %.3f,\n  \
     \"warm_first_ms\": %.3f,\n  \"warm_faster_than_cold\": %b,\n  \
     \"snapshot\": %s\n}\n"
    jobs connections repeat distinct s.Workload.requests s.Workload.errors
    s.Workload.wall_s s.Workload.req_per_s s.Workload.p50_ms s.Workload.p99_ms
    cold_ms warm_ms (warm_ms < cold_ms)
    (Obs.snapshot_json ());
  close_out oc

let p15_serve ?(smoke = false) () =
  section "P15: cspc serve — replayed traffic, cold vs warm first request";
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    Filename.concat tmp (Printf.sprintf "cspc-p15-%d.sock" (Unix.getpid ()))
  in
  let snapshot =
    Filename.concat tmp (Printf.sprintf "cspc-p15-%d.snap" (Unix.getpid ()))
  in
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ socket; snapshot ];
  let jobs = 2 and connections = 2 in
  let repeat = if smoke then 1 else 3 in
  let items = Workload.mixed ~stress:(not smoke) ~sources:[] () in
  let probe =
    let is_graph (it : Workload.item) =
      let n = String.length it.label in
      n >= 6 && String.sub it.label (n - 6) 6 = ":graph"
    in
    (List.find is_graph items).Workload.request
  in
  (* cold: a fresh server's first request pays parse + Engine.compile *)
  let d = p15_start_server (Server.config ~jobs socket) in
  let cold_ms = p15_time_first socket probe in
  let summary =
    match Workload.replay ~connections ~repeat ~socket items with
    | Ok (_, s) -> s
    | Error m -> failwith ("p15: replay: " ^ m)
  in
  ignore
    (p15_request socket
       [ ("op", Wjson.str "save"); ("path", Wjson.str snapshot) ]);
  p15_stop_server socket d;
  (* warm: [--warm] replays the snapshot before the socket opens, so
     the first request runs against hot caches *)
  let d2 = p15_start_server (Server.config ~jobs ~warm:snapshot socket) in
  let warm_ms = p15_time_first socket probe in
  p15_stop_server socket d2;
  Sys.remove snapshot;
  result "  workload: %d distinct items x%d over %d connections, jobs=%d\n"
    (List.length items) repeat connections jobs;
  result "  %8d requests  %d errors  %8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n"
    summary.Workload.requests summary.Workload.errors
    summary.Workload.req_per_s summary.Workload.p50_ms summary.Workload.p99_ms;
  result "  first request: cold %.1f ms, warm %.1f ms — warm faster: %s\n"
    cold_ms warm_ms
    (ok (warm_ms < cold_ms));
  write_p15_json "BENCH_serve.json" ~jobs ~connections ~repeat
    ~distinct:(List.length items) ~cold_ms ~warm_ms summary;
  result "  wrote BENCH_serve.json\n"

(* ---------------------------------------------------------------------- *)
(* P16: counter abstraction — flat quotient vs superlinear concrete        *)
(* ---------------------------------------------------------------------- *)

(* The whole point of lib/abstraction: the concrete state space of a
   replica family grows with n (exactly 2^n for the workers pool)
   while the counter-abstract quotient saturates at the cutoff.  Each
   row explores both sides of one (family, n) pair and re-checks the
   soundness inclusion — every erased concrete trace must be a trace
   of the abstract LTS — so the emitted JSON doubles as a CI gate:
   any [sound_vs_concrete: false], or a ring row at n ≥ 8 whose
   abstract side is not strictly smaller than the concrete one, is a
   bug.  A final record times [check_family] certifying the ring for
   every n ≤ 32 in one run. *)

type p16_row = {
  p16_family : string;
  p16_n : int;
  p16_concrete_states : int;
  p16_concrete_complete : bool;
  p16_concrete_ms : float;
  p16_abstract_states : int;
  p16_collapses : int;
  p16_abstract_ms : float;
  p16_sound : bool;
}

let write_p16_json path rows ~check_model ~check_formula ~check_classes
    ~check_certified ~check_ms =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"p16_abstraction\",\n  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"family\": \"%s\", \"n\": %d, \"concrete_states\": %d, \
         \"concrete_complete\": %b, \"concrete_ms\": %.3f, \
         \"abstract_states\": %d, \"omega_collapses\": %d, \
         \"abstract_ms\": %.3f, \"abstract_lt_concrete\": %b, \
         \"sound_vs_concrete\": %b }%s\n"
        r.p16_family r.p16_n r.p16_concrete_states r.p16_concrete_complete
        r.p16_concrete_ms r.p16_abstract_states r.p16_collapses
        r.p16_abstract_ms
        (r.p16_abstract_states < r.p16_concrete_states)
        r.p16_sound
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"family_check\": { \"model\": \"%s\", \"formula\": \"%s\", \
     \"classes\": %d, \"certified\": %b, \"ms\": %.3f },\n  \"snapshot\": \
     %s\n}\n"
    check_model check_formula check_classes check_certified check_ms
    (Obs.snapshot_json ());
  close_out oc

let p16_abstraction ?(smoke = false) () =
  section "P16: counter abstraction — abstract quotient vs concrete product";
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    ((Unix.gettimeofday () -. t0) *. 1000., r)
  in
  let concrete name ~n =
    match name with
    | "token-ring" ->
      let m = Models.Token_ring.make ~n in
      (m.Models.Token_ring.defs, m.Models.Token_ring.network)
    | "leader" ->
      let m = Models.Leader.make ~n in
      (m.Models.Leader.defs, m.Models.Leader.network)
    | "workers" ->
      let m = Models.Workers.make ~n in
      (m.Models.Workers.defs, m.Models.Workers.network)
    | other -> failwith ("p16: no concrete instance for " ^ other)
  in
  let cases =
    if smoke then
      [ ("token-ring", [ 2; 4; 8 ]); ("leader", [ 2; 3 ]);
        ("workers", [ 2; 4; 8 ]) ]
    else
      [ ("token-ring", [ 2; 4; 8; 16 ]); ("leader", [ 2; 4; 6 ]);
        ("workers", [ 2; 4; 8; 16 ]) ]
  in
  let sound_depth = 3 in
  let rows =
    List.concat_map
      (fun (name, sizes) ->
        let fam =
          match Abstraction.Family.find name with
          | Some f -> f
          | None -> failwith ("p16: no family preset " ^ name)
        in
        List.map
          (fun n ->
            let defs, network = concrete name ~n in
            let concrete_ms, lts =
              time_ms (fun () ->
                  let eng = Engine.create ~nat_bound:2 defs in
                  let compiled = Engine.compile ~budget:200_000 eng network in
                  Lts.explore ~max_states:200_000 ~compiled
                    (Engine.step_config eng) network)
            in
            let abstract_ms, r =
              time_ms (fun () ->
                  Abstraction.Counter.explore
                    fam.Abstraction.Family.fam ~n)
            in
            (* the inclusion that makes the quotient a sound verdict
               carrier: α(concrete traces) ⊆ traces(abstract) *)
            let cfg =
              Step.config ~sampler:(Sampler.nat_bound 2) defs
            in
            let traces =
              Closure.to_traces (Step.traces cfg ~depth:sound_depth network)
            in
            let sound =
              List.for_all
                (fun tr ->
                  Abstraction.Counter.accepts r.Abstraction.Counter.lts
                    (Abstraction.Family.abstract_trace fam tr))
                traces
            in
            {
              p16_family = name;
              p16_n = n;
              p16_concrete_states = Lts.num_states lts;
              p16_concrete_complete = lts.Lts.complete;
              p16_concrete_ms = concrete_ms;
              p16_abstract_states = r.Abstraction.Counter.quotient_states;
              p16_collapses = r.Abstraction.Counter.omega_collapses;
              p16_abstract_ms = abstract_ms;
              p16_sound = sound;
            })
          sizes)
      cases
  in
  result "  %-12s %4s %10s %10s %9s %12s %8s\n" "family" "n" "concrete"
    "abstract" "collapse" "sound" "abs(ms)";
  List.iter
    (fun r ->
      result "  %-12s %4d %9d%s %10d %9d %12s %8.2f\n" r.p16_family r.p16_n
        r.p16_concrete_states
        (if r.p16_concrete_complete then "" else "+")
        r.p16_abstract_states r.p16_collapses (ok r.p16_sound)
        r.p16_abstract_ms)
    rows;
  (* one run certifying the ring for every n up to 32 *)
  let fam =
    match Abstraction.Family.find "token-ring" with
    | Some f -> f
    | None -> failwith "p16: no token-ring preset"
  in
  let check_formula = "n<=32" in
  let formula =
    match Abstraction.Formula.of_string check_formula with
    | Ok f -> f
    | Error m -> failwith ("p16: " ^ m)
  in
  let check_ms, outcome =
    time_ms (fun () ->
        Abstraction.Family.check_family ~depth:(if smoke then 6 else 8) fam
          ~formula)
  in
  let check_classes, check_certified =
    match outcome with
    | Ok o ->
      (List.length o.Abstraction.Family.classes,
       o.Abstraction.Family.certified)
    | Error m -> failwith ("p16: family check: " ^ m)
  in
  result "  ring for all %s: %d class(es), certified %s in %.1f ms\n"
    check_formula check_classes (ok check_certified) check_ms;
  write_p16_json "BENCH_abstraction.json" rows ~check_model:"token-ring"
    ~check_formula ~check_classes ~check_certified ~check_ms;
  result "  wrote BENCH_abstraction.json\n"

(* ---------------------------------------------------------------------- *)
(* Part 2: Bechamel timing suites (P1–P6)                                  *)
(* ---------------------------------------------------------------------- *)

open Bechamel
open Toolkit

let make_tests () =
  let sampler = Sampler.nat_bound 2 in
  (* P1: closure operations *)
  let closure_of_copier depth =
    Step.traces (Step.config ~sampler Paper.Copier.defs) ~depth Paper.Copier.copier
  in
  let c5 = closure_of_copier 5 and c7 = closure_of_copier 7 in
  let p1 =
    Test.make_grouped ~name:"P1-closure"
      [
        Test.make ~name:"union(d7)" (Staged.stage (fun () -> Closure.union c7 c7));
        Test.make ~name:"hide(d7)"
          (Staged.stage (fun () ->
               Closure.hide (fun c -> Channel.base c = "wire") c7));
        Test.make ~name:"par(d5)"
          (Staged.stage (fun () ->
               Closure.par
                 ~in_x:(fun _ -> true)
                 ~in_y:(fun c -> Channel.base c = "wire")
                 c5 c5));
        Test.make ~name:"to_traces(d7)" (Staged.stage (fun () -> Closure.to_traces c7));
      ]
  in
  (* P2: denotational fixpoint, depth sweep *)
  let p2 =
    Test.make_indexed ~name:"P2-denote-copier" ~args:[ 3; 5; 7 ] (fun depth ->
        Staged.stage (fun () ->
            Denote.denote
              (Denote.config ~sampler Paper.Copier.defs)
              ~depth Paper.Copier.copier))
  in
  (* P3: operational enumeration, depth sweep on the protocol network *)
  let p3 =
    Test.make_indexed ~name:"P3-step-protocol" ~args:[ 3; 4; 5 ] (fun depth ->
        Staged.stage (fun () ->
            Step.traces
              (Step.config ~sampler Paper.Protocol.defs)
              ~depth Paper.Protocol.network))
  in
  (* P4: bounded sat-checking *)
  let p4 =
    Test.make_grouped ~name:"P4-satcheck"
      [
        Test.make ~name:"copier(d6)"
          (Staged.stage (fun () ->
               Sat.check ~depth:6
                 (Step.config ~sampler Paper.Copier.defs)
                 Paper.Copier.copier Paper.Copier.copier_spec));
        Test.make ~name:"protocol(d4)"
          (Staged.stage (fun () ->
               Sat.check ~depth:4
                 (Step.config ~sampler ~hide_fuel:8 Paper.Protocol.defs)
                 Paper.Protocol.protocol Paper.Protocol.protocol_spec));
      ]
  in
  (* P5: proof construction + checking *)
  let chain_test n =
    let defs, chain = Paper.Copier.chain_defs n in
    let stage_spec i =
      Assertion.Prefix
        ( Term.Chan (Chan_expr.indexed "c" (Expr.int i)),
          Term.Chan (Chan_expr.indexed "c" (Expr.int (i - 1))) )
    in
    let tables =
      Tactic.tables
        ~invariants:
          (List.init n (fun i ->
               (Paper.Copier.stage_name (i + 1), stage_spec (i + 1))))
        ()
    in
    let ctx = Sequent.context defs in
    fun () ->
      match
        Tactic.prove_and_check ~tables ctx
          (Sequent.Holds (chain, Paper.Copier.chain_spec n))
      with
      | Ok _ -> ()
      | Error m -> failwith m
  in
  let p5 =
    Test.make_grouped ~name:"P5-prove"
      [
        Test.make ~name:"copier"
          (Staged.stage (fun () ->
               Tactic.prove_and_check ~tables:Paper.Copier.tables
                 (Sequent.context Paper.Copier.defs)
                 (Sequent.Holds (Paper.Copier.copier, Paper.Copier.copier_spec))));
        Test.make ~name:"table1"
          (Staged.stage (fun () ->
               Tactic.prove_and_check ~tables:Paper.Protocol.tables
                 (Sequent.context Paper.Protocol.defs)
                 (Sequent.Holds (Paper.Protocol.sender, Paper.Protocol.sender_spec))));
        Test.make ~name:"chain4" (Staged.stage (chain_test 4));
        Test.make ~name:"chain8" (Staged.stage (chain_test 8));
      ]
  in
  (* P6: simulator throughput (1000 steps per run) *)
  let p6 =
    Test.make_grouped ~name:"P6-simulate"
      [
        Test.make ~name:"protocol-1000steps"
          (Staged.stage (fun () ->
               Runner.run
                 ~scheduler:(Scheduler.uniform ~seed:1)
                 ~max_steps:1000
                 (Step.config ~sampler Paper.Protocol.defs)
                 Paper.Protocol.protocol));
        Test.make ~name:"multiplier-1000steps"
          (Staged.stage (fun () ->
               let m = Paper.Multiplier.default in
               Runner.run
                 ~scheduler:(Scheduler.uniform ~seed:1)
                 ~max_steps:1000
                 (Step.config ~sampler m.Paper.Multiplier.defs)
                 m.Paper.Multiplier.multiplier));
      ]
  in
  let p7 =
    Test.make_grouped ~name:"P7-failures"
      [
        Test.make ~name:"receiver(d3)"
          (Staged.stage (fun () ->
               Failures.failures
                 (Step.config ~sampler Paper.Protocol.defs)
                 ~depth:3 Paper.Protocol.receiver));
        Test.make ~name:"lts-protocol"
          (Staged.stage (fun () ->
               Lts.explore ~max_states:500
                 (Step.config ~sampler Paper.Protocol.defs)
                 Paper.Protocol.protocol));
      ]
  in
  [ p1; p2; p3; p4; p5; p6; p7 ]

let run_timings () =
  section "P1-P7: timing (Bechamel, monotonic clock; ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, v) ->
             let est =
               match Analyze.OLS.estimates v with
               | Some [ e ] -> Printf.sprintf "%14.1f ns/run" e
               | _ -> "  (no estimate)"
             in
             result "  %-36s %s\n" name est))
    (make_tests ())

(* ---------------------------------------------------------------------- *)
(* P9: fuzz throughput — scenarios cross-checked per second                *)
(* ---------------------------------------------------------------------- *)

let p9_fuzz_throughput ?(cases = 400) () =
  section "P9: differential fuzz throughput (all oracles, seeded)";
  let module Fuzz = Csp_testkit.Fuzz in
  let cfg = { Fuzz.default_config with Fuzz.seed = 1; max_cases = cases } in
  let r = Fuzz.run cfg in
  result "  %-22s %6d cases %8.2fs %10.1f cases/s  %d counterexample(s)\n"
    "generate+4 oracles" r.Fuzz.cases r.Fuzz.elapsed
    (float_of_int r.Fuzz.cases /. r.Fuzz.elapsed)
    (List.length r.Fuzz.counterexamples)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "smoke" ->
    (* tiny sizes for the @bench-smoke alias: exercises the E11 driver,
       the P8 old-vs-new comparison and the JSON emitter in seconds *)
    e11_compositionality ~sizes:[ 1; 2; 3 ] ();
    p8_hashcons ~smoke:true ();
    p10_procir ~smoke:true ();
    p11_parallel ~smoke:true ();
    p12_obs_overhead ~smoke:true ();
    p13_compiled ~smoke:true ();
    p14_fuzz_coverage ~smoke:true ();
    p15_serve ~smoke:true ();
    p16_abstraction ~smoke:true ();
    p9_fuzz_throughput ~cases:100 ();
    print_newline ()
  | "p8" ->
    p8_hashcons ();
    print_newline ()
  | "p10" ->
    p10_procir ();
    print_newline ()
  | "p11" ->
    p11_parallel ();
    print_newline ()
  | "p12" | "obs" ->
    p12_obs_overhead ();
    print_newline ()
  | "p13" | "compiled" ->
    p13_compiled ();
    print_newline ()
  | "p14" | "fuzz" ->
    p14_fuzz_coverage ();
    print_newline ()
  | "p15" | "serve" ->
    p15_serve ();
    print_newline ()
  | "p16" | "abstraction" ->
    p16_abstraction ();
    print_newline ()
  | _ ->
    let quick = mode = "quick" in
    e1_copier ();
    e2_protocol ();
    e3_multiplier ();
    e4_model_theorems ();
    e5_op_vs_deno ();
    e6_soundness ();
    e7_partiality ();
    e8_nondet_defect ();
    e9_failures_extension ();
    e10_mutations ();
    e11_compositionality ();
    if not quick then begin
      a1_prover_ablation ();
      a2_closure_ablation ();
      p8_hashcons ();
      p10_procir ();
      p11_parallel ();
      p12_obs_overhead ();
      p13_compiled ();
      p14_fuzz_coverage ();
      p15_serve ();
      p16_abstraction ();
      p9_fuzz_throughput ();
      run_timings ()
    end;
    print_newline ()
