module F = Csp_abstraction.Family
module Formula = Csp_abstraction.Formula
let () =
  let fam = match F.find "token-ring" with Some f -> f | None -> assert false in
  let formula = match Formula.of_string "n <= 8" with Ok f -> f | Error m -> failwith m in
  (* max_states small enough to truncate the abstract exploration *)
  match F.check_family ~depth:6 ~max_states:2 fam ~formula with
  | Error m -> Printf.printf "error: %s\n" m
  | Ok o ->
    Printf.printf "certified=%b classes=%d\n" o.F.certified (List.length o.F.classes);
    List.iter (fun c ->
      Printf.printf "  rep=%d states=%d ok=%b\n" c.F.rep c.F.abstract_states
        (match c.F.checked with Ok _ -> true | Error _ -> false)) o.F.classes
