(* cspc — command-line front end.

   Subcommands: parse, traces, simulate, check, prove, deadlock, fuzz.
   A .csp file contains process definitions and `assert` declarations in
   the concrete syntax of Csp_syntax.Parser. *)

open Csp
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer

let die fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let load path =
  Obs.span ~cat:"cli" "load"
    ~args:(fun () -> [ ("path", Obs.String path) ])
  @@ fun () ->
  let ic = try open_in path with Sys_error m -> die "%s" m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Parser.parse_file s with
  | Ok file -> file
  | Error m -> die "%s: %s" path m

let find_process file name =
  match Defs.lookup file.Parser.defs name with
  | Some _ -> Process.ref_ name
  | None -> die "process %s is not defined" name

let tables_of file =
  let invariants =
    List.filter_map
      (function Parser.Assert_plain (n, a) -> Some (n, a) | _ -> None)
      file.Parser.decls
  in
  let array_invariants =
    List.filter_map
      (function
        | Parser.Assert_array (q, x, m, a) -> Some (q, (x, m, a))
        | _ -> None)
      file.Parser.decls
  in
  Tactic.tables ~invariants ~array_invariants ()

(* Every semantic subcommand runs off one unified engine: the sampler,
   fuel budgets, depth, seed and domain count all come from this single
   value, and the operational/denotational caches are shared within a
   command. *)
let engine ?depth ?seed ?(domains = 1) file ~nat_bound =
  Engine.create ?depth ?seed ~domains ~nat_bound file.Parser.defs

(* ---- telemetry ------------------------------------------------------- *)

(* Every subcommand takes the same three exporters.  [--stats] prints
   the full registry snapshot (kernel caches, pool, per-oracle
   counters, timers) as `key = value` lines on stderr, so it composes
   with redirected command output; [--stats-json FILE] writes the same
   snapshot as one JSON object; [--trace-out FILE] writes the span log
   in Chrome trace_event format (load in chrome://tracing or
   Perfetto).  Any of the three switches telemetry on for the whole
   run; outputs are exported in an [at_exit] hook so failing commands
   (exit 1) still produce their telemetry. *)
type telemetry = {
  stats : bool;
  stats_json : string option;
  trace_out : string option;
}

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let install_telemetry t =
  if t.stats || t.stats_json <> None || t.trace_out <> None then begin
    Obs.set_enabled true;
    at_exit (fun () ->
        if t.stats then Format.eprintf "%a@." Obs.pp_snapshot ();
        Option.iter (fun p -> write_file p (Obs.snapshot_json ())) t.stats_json;
        Option.iter (fun p -> write_file p (Obs.chrome_trace ())) t.trace_out)
  end

(* Instrument the command body itself: with telemetry off this is one
   atomic load, with it on the trace gets a root span per command. *)
let with_telemetry name t f =
  install_telemetry t;
  Obs.span ~cat:"cli" name f

(* ---- parse ---------------------------------------------------------- *)

let cmd_parse path telemetry =
  with_telemetry "parse" telemetry @@ fun () ->
  let file = load path in
  print_endline (Printer.defs file.Parser.defs);
  List.iter
    (function
      | Parser.Assert_plain (n, a) ->
        Printf.printf "assert %s sat %s\n" n (Printer.assertion a)
      | Parser.Assert_array (q, x, m, a) ->
        Printf.printf "assert forall %s:%s. %s[%s] sat %s\n" x (Printer.vset m)
          q x
          (Printer.assertion ~bound:[ x ] a))
    file.Parser.decls

(* ---- traces --------------------------------------------------------- *)

let cmd_traces path name depth nat_bound denotational telemetry =
  with_telemetry "traces" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file name in
  let eng = engine ~depth file ~nat_bound in
  let closure =
    if denotational then Denote.denote (Engine.denote_config eng) ~depth p
    else Step.traces (Engine.step_config eng) ~depth p
  in
  Printf.printf "%d traces (maximal shown):\n" (Closure.cardinal closure);
  List.iter
    (fun t -> print_endline (Trace.to_string t))
    (Closure.maximal_traces closure)

(* ---- simulate ------------------------------------------------------- *)

let cmd_simulate path name steps seed nat_bound telemetry =
  with_telemetry "simulate" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file name in
  let monitors =
    List.filter_map
      (function
        | Parser.Assert_plain (n, a) when String.equal n name ->
          Some (Csp_sim.Runner.monitor n a)
        | _ -> None)
      file.Parser.decls
  in
  let eng = engine ~seed file ~nat_bound in
  let r = Csp_sim.Runner.run_engine ~monitors ~max_steps:steps eng p in
  Format.printf "%a@." Csp_sim.Runner.pp_result r;
  List.iter
    (fun v ->
      Format.printf "VIOLATION %s at step %d: %a@."
        v.Csp_sim.Runner.monitor_name v.Csp_sim.Runner.at_step History.pp
        v.Csp_sim.Runner.history)
    r.Csp_sim.Runner.violations;
  if r.Csp_sim.Runner.violations <> [] then exit 1

(* ---- check (bounded sat) -------------------------------------------- *)

let target_process file = function
  | Parser.Assert_plain (n, _) -> find_process file n
  | Parser.Assert_array (q, x, m, _) ->
    ignore (find_process file q);
    (* check every sampled instance *)
    let _ = (x, m) in
    Process.ref_ q

let cmd_check path depth nat_bound telemetry =
  with_telemetry "check" telemetry @@ fun () ->
  let file = load path in
  let eng = engine ~depth file ~nat_bound in
  let failures = ref 0 in
  List.iter
    (fun decl ->
      match decl with
      | Parser.Assert_plain (n, a) ->
        let p = find_process file n in
        let out = Sat.check_engine eng p a in
        Format.printf "%s sat %s: %a@." n (Printer.assertion a) Sat.pp_outcome
          out;
        (match out with Sat.Fails _ -> incr failures | Sat.Holds _ -> ())
      | Parser.Assert_array (q, x, m, a) ->
        List.iter
          (fun v ->
            let p = Process.Ref (q, Some (Expr.Const v)) in
            let a' =
              Assertion.subst_var x (Term.Const v) a
            in
            let out = Sat.check_engine eng p a' in
            Format.printf "%s[%s] sat %s: %a@." q (Value.to_string v)
              (Printer.assertion a') Sat.pp_outcome out;
            match out with Sat.Fails _ -> incr failures | Sat.Holds _ -> ())
          (Sampler.sample eng.Engine.sampler m))
    file.Parser.decls;
  ignore target_process;
  if !failures > 0 then die "%d assertion(s) failed" !failures

(* ---- prove ---------------------------------------------------------- *)

(* [--family FORMULA] switches prove from the file's assertions to a
   preset replica family: one counter-abstract exploration per
   assignment class of the formula certifies the family's erased
   invariants for every satisfying instance at once. *)
let cmd_prove_family ~model ~formula ~depth =
  let fam =
    match Abstraction.Family.find model with
    | Some f -> f
    | None ->
      die "unknown family %s (have: %s)" model
        (String.concat ", "
           (List.map
              (fun (f : Abstraction.Family.t) -> f.fam.Abstraction.Counter.name)
              Abstraction.Family.presets))
  in
  let f =
    match Abstraction.Formula.of_string formula with
    | Ok f -> f
    | Error m -> die "bad formula %S: %s" formula m
  in
  match Abstraction.Family.check_family ~depth fam ~formula:f with
  | Error m -> die "%s: %s" model m
  | Ok o ->
    Format.printf "%a@." Abstraction.Family.pp_outcome o;
    if not o.Abstraction.Family.certified then exit 1

let cmd_prove path verbose emit family model depth telemetry =
  with_telemetry "prove" telemetry @@ fun () ->
  match family with
  | Some formula -> cmd_prove_family ~model ~formula ~depth
  | None ->
  let path =
    match path with
    | Some p -> p
    | None -> die "FILE is required unless --family is given"
  in
  let file = load path in
  let tables = tables_of file in
  let ctx = Sequent.context file.Parser.defs in
  let failures = ref 0 in
  let proved = ref [] in
  List.iter
    (fun decl ->
      let name, judgment =
        match decl with
        | Parser.Assert_plain (n, a) -> (n, Sequent.Holds (Process.ref_ n, a))
        | Parser.Assert_array (q, x, m, a) ->
          (q ^ "[]", Sequent.Holds_all (q, x, m, a))
      in
      match Tactic.prove_and_check ~tables ctx judgment with
      | Ok (proof, report) ->
        proved := (judgment, proof) :: !proved;
        Printf.printf "PROVED %s: %d rules, %d obligations (%d by testing)\n"
          name (Proof.size proof)
          (List.length report.Check.obligations)
          (Check.tested_obligations report);
        if verbose then Format.printf "%a@." Check.pp_report report
      | Error m ->
        incr failures;
        Printf.printf "FAILED %s: %s\n" name m)
    file.Parser.decls;
  (match emit with
  | None -> ()
  | Some out ->
    let oc = open_out out in
    output_string oc (Cert.write_many (List.rev !proved));
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %d certificate(s) to %s\n" (List.length !proved) out);
  if !failures > 0 then exit 1

(* ---- check-cert --------------------------------------------------------- *)

let cmd_check_cert path cert_path telemetry =
  with_telemetry "check-cert" telemetry @@ fun () ->
  let file = load path in
  let ic = open_in cert_path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Cert.read_many raw with
  | Error m -> die "%s: %s" cert_path m
  | Ok certs ->
    let ctx = Sequent.context file.Parser.defs in
    let failures = ref 0 in
    List.iter
      (fun (j, proof) ->
        match Check.check ctx j proof with
        | Ok report ->
          Printf.printf "CHECKED %s (%d rules, %d tested obligations)\n"
            (Sequent.judgment_to_string j)
            report.Check.rules_applied
            (Check.tested_obligations report)
        | Error m ->
          incr failures;
          Printf.printf "REJECTED %s: %s\n" (Sequent.judgment_to_string j) m)
      certs;
    if !failures > 0 then exit 1

(* With [--stats], the compiled subcommands report the one-shot
   compile separately from the exploration/run it amortises over. *)
let report_phase_ms telemetry cmd ~compile_ms ~run_label ~run_ms =
  if telemetry.stats then
    Format.eprintf "%s: compile %.2f ms, %s %.2f ms@." cmd compile_ms run_label
      run_ms

(* ---- deadlock ------------------------------------------------------- *)

let cmd_deadlock path name steps runs nat_bound seed use_compiled telemetry =
  with_telemetry "deadlock" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file name in
  let eng = engine ~seed file ~nat_bound in
  let t0 = Obs.now_ns () in
  let compiled =
    if use_compiled then Some (Engine.compile ~budget:steps eng p) else None
  in
  let t1 = Obs.now_ns () in
  let deadlocks = ref 0 in
  for i = 0 to runs - 1 do
    let r =
      Csp_sim.Runner.run_engine ~seed:(seed + i) ~max_steps:steps ?compiled eng
        p
    in
    if r.Csp_sim.Runner.stop = Csp_sim.Runner.Deadlock then incr deadlocks
  done;
  report_phase_ms telemetry "deadlock"
    ~compile_ms:((t1 -. t0) /. 1e6)
    ~run_label:(Printf.sprintf "%d runs" runs)
    ~run_ms:((Obs.now_ns () -. t1) /. 1e6);
  Printf.printf "%d/%d runs deadlocked within %d steps\n" !deadlocks runs steps;
  if !deadlocks > 0 then exit 1

(* ---- graph ----------------------------------------------------------- *)

(* [--abstract counter] graphs the counter-abstract quotient of a
   preset family at instance size [--n] instead of a concrete file. *)
let cmd_graph_abstract ~model ~n ~max_states output =
  let fam =
    match Abstraction.Family.find model with
    | Some f -> f
    | None -> die "unknown family %s" model
  in
  let r = Abstraction.Counter.explore ~max_states fam.fam ~n in
  Printf.printf
    "%d abstract states, %d transitions%s; %d omega collapse(s); %d local \
     state(s) in legend\n"
    r.Abstraction.Counter.quotient_states
    (Lts.num_transitions r.Abstraction.Counter.lts)
    (if r.Abstraction.Counter.lts.Lts.complete then "" else " (truncated)")
    r.Abstraction.Counter.omega_collapses
    (List.length r.Abstraction.Counter.legend);
  List.iter
    (fun (i, p) ->
      Printf.printf "  s%d = %s\n" i (Printer.process p))
    r.Abstraction.Counter.legend;
  let dot = Lts.to_dot ~name:(model ^ "_abs") r.Abstraction.Counter.lts in
  match output with
  | None -> print_string dot
  | Some f ->
    let oc = open_out f in
    output_string oc dot;
    close_out oc;
    Printf.printf "wrote %s\n" f

let cmd_graph path name max_states nat_bound output jobs use_compiled relaxed
    abstract model fam_n telemetry =
  with_telemetry "graph" telemetry @@ fun () ->
  match abstract with
  | Some "counter" -> cmd_graph_abstract ~model ~n:fam_n ~max_states output
  | Some m -> die "unknown abstraction %s (have: counter)" m
  | None ->
  let path =
    match path with
    | Some p -> p
    | None -> die "FILE is required unless --abstract is given"
  in
  let name =
    match name with
    | Some n -> n
    | None -> die "--process is required unless --abstract is given"
  in
  let file = load path in
  let p = find_process file name in
  let eng = engine ~domains:jobs file ~nat_bound in
  let t0 = Obs.now_ns () in
  let compiled =
    (* compile exactly as many rows as the exploration may visit;
       relaxed mode bypasses the automaton, so skip the compile *)
    if use_compiled && not relaxed then
      Some (Engine.compile ~budget:max_states eng p)
    else None
  in
  let t1 = Obs.now_ns () in
  let lts =
    Lts.explore ~max_states ?pool:(Engine.pool eng) ?compiled ~relaxed
      (Engine.step_config eng) p
  in
  report_phase_ms telemetry "graph"
    ~compile_ms:((t1 -. t0) /. 1e6)
    ~run_label:"explore"
    ~run_ms:((Obs.now_ns () -. t1) /. 1e6);
  Printf.printf
    "%d states, %d transitions%s; deterministic=%b; deadlock states: %d\n"
    (Lts.num_states lts) (Lts.num_transitions lts)
    (if lts.Lts.complete then ""
     else
       Printf.sprintf " (truncated; %d states with dropped moves)"
         (List.length (Lts.truncated_states lts)))
    (Lts.is_deterministic lts)
    (List.length (Lts.deadlock_states lts));
  let dot = Lts.to_dot ~name lts in
  match output with
  | None -> print_string dot
  | Some f ->
    let oc = open_out f in
    output_string oc dot;
    close_out oc;
    Printf.printf "wrote %s\n" f

(* ---- refusals ---------------------------------------------------------- *)

let cmd_refusals path name depth nat_bound telemetry =
  with_telemetry "refusals" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file name in
  let cfg = Engine.step_config (engine ~depth file ~nat_bound) in
  let fs = Failures.failures cfg ~depth p in
  Format.printf "%a@." Failures.pp fs;
  (match Failures.can_deadlock cfg ~depth p with
  | Some [] -> print_endline "may deadlock immediately"
  | Some s -> Printf.printf "may deadlock after %s\n" (Trace.to_string s)
  | None -> Printf.printf "no reachable deadlock within depth %d\n" depth);
  Printf.printf "STOP | %s distinguished from %s in the refusals model: %b\n"
    name name
    (Failures.distinguishes_stop_choice cfg ~depth p)

(* ---- refine ------------------------------------------------------------ *)

let cmd_refine path impl spec depth nat_bound weak jobs use_compiled telemetry =
  with_telemetry "refine" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file impl and q = find_process file spec in
  let eng = engine ~depth ~domains:jobs file ~nat_bound in
  let cfg = Engine.step_config eng in
  if weak then begin
    (* pre-compile both sides so the compile/check split is visible;
       the compiler handed to Bisim hits the engine's cache *)
    let t0 = Obs.now_ns () in
    let compiler =
      if use_compiled then begin
        let compile r = Engine.compile ~budget:2000 eng r in
        ignore (compile p);
        ignore (compile q);
        Some compile
      end
      else None
    in
    let t1 = Obs.now_ns () in
    let bisimilar = Bisim.weak_equivalent ?pool:(Engine.pool eng) ?compiler cfg p q in
    report_phase_ms telemetry "refine"
      ~compile_ms:((t1 -. t0) /. 1e6)
      ~run_label:"check"
      ~run_ms:((Obs.now_ns () -. t1) /. 1e6);
    Printf.printf "%s and %s weakly bisimilar (bounded): %b\n" impl spec
      bisimilar
  end
  else begin
    match Equiv.trace_refines ~depth cfg ~impl:p ~spec:q with
    | Ok () ->
      Printf.printf "%s trace-refines %s up to depth %d\n" impl spec depth
    | Error s ->
      Printf.printf "NOT a refinement: %s allows %s, %s does not\n" impl
        (Trace.to_string s) spec;
      exit 1
  end

(* ---- infer ------------------------------------------------------------ *)

let cmd_infer path name nat_bound seed telemetry =
  with_telemetry "infer" telemetry @@ fun () ->
  let file = load path in
  let p = find_process file name in
  let eng = engine ~seed file ~nat_bound in
  let tables = tables_of file in
  let results = Infer.infer_engine ~tables eng ~name p in
  if results = [] then print_endline "no invariants conjectured"
  else
    List.iter
      (fun c ->
        Printf.printf "%s  %s\n"
          (if c.Infer.proved then "PROVED   " else "conjecture")
          (Printer.assertion c.Infer.assertion))
      results

(* ---- fuzz ------------------------------------------------------------- *)

module Oracle = Csp_testkit.Oracle
module Fuzz = Csp_testkit.Fuzz
module Corpus = Csp_testkit.Corpus

let resolve_oracles = function
  | [] -> Oracle.all
  | names ->
    List.map
      (fun n ->
        match Oracle.find n with
        | Some o -> o
        | None ->
          die "unknown oracle %s (available: %s)" n
            (String.concat ", " (Oracle.names ())))
      names

let cmd_fuzz seed cases budget oracle_names save replay jobs coverage telemetry
    =
  with_telemetry "fuzz" telemetry @@ fun () ->
  let oracles = resolve_oracles oracle_names in
  let replay_failures =
    match replay with
    | None -> 0
    | Some dir ->
      let entries = Corpus.read_dir dir in
      let failed = ref 0 in
      List.iter
        (fun (e : Corpus.entry) ->
          match Oracle.find e.Corpus.oracle with
          | None ->
            incr failed;
            Printf.printf "DISABLED %s: oracle %s is not registered\n"
              e.Corpus.path e.Corpus.oracle
          | Some o -> (
            match o.Oracle.check e.Corpus.scenario with
            | Oracle.Pass -> Printf.printf "ok %s [%s]\n" e.Corpus.path o.Oracle.name
            | Oracle.Fail m ->
              incr failed;
              Printf.printf "FAIL %s [%s]: %s\n" e.Corpus.path o.Oracle.name m))
        entries;
      Printf.printf "corpus: %d entr%s replayed, %d failure(s)\n"
        (List.length entries)
        (if List.length entries = 1 then "y" else "ies")
        !failed;
      !failed
  in
  let config =
    {
      Fuzz.default_config with
      Fuzz.seed;
      max_cases = cases;
      budget;
      oracles;
      jobs;
    }
  in
  let report =
    if coverage then begin
      let report, cov = Fuzz.run_coverage config in
      Format.printf "%a@." Fuzz.pp_coverage (report, cov);
      report
    end
    else Fuzz.run config
  in
  Format.printf "%a@." Fuzz.pp_report report;
  (match save with
  | Some dir ->
    List.iter
      (fun (c : Fuzz.counterexample) ->
        let path =
          Corpus.write ~dir ~oracle:c.Fuzz.oracle ~seed c.Fuzz.scenario
        in
        Printf.printf "saved %s\n" path)
      report.Fuzz.counterexamples
  | None -> ());
  if replay_failures > 0 || report.Fuzz.counterexamples <> [] then exit 1

(* ---- serve / client -------------------------------------------------- *)

module Server = Csp_server.Server
module Protocol = Csp_server.Protocol
module Workload = Csp_server.Workload
module Json = Csp_persist.Json

let cmd_serve socket jobs warm max_frame max_states max_depth max_cases
    max_sources telemetry =
  with_telemetry "serve" telemetry @@ fun () ->
  let limits =
    { Protocol.max_frame; max_states; max_depth; max_cases; max_sources }
  in
  let cfg = Server.config ~jobs ~limits ?warm socket in
  let ready () =
    Printf.eprintf "cspc serve: listening on %s (jobs=%d%s)\n%!" socket
      (max 1 jobs)
      (match warm with Some f -> ", warm from " ^ f | None -> "")
  in
  match Server.run ~ready cfg with Ok () -> () | Error m -> die "%s" m

let slurp path =
  let ic = try open_in path with Sys_error m -> die "%s" m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus_sources dir =
  match Sys.readdir dir with
  | exception Sys_error m -> die "%s" m
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".csp")
    |> List.sort compare
    |> List.map (fun n -> (n, slurp (Filename.concat dir n)))

let summary_json (s : Workload.summary) =
  Json.Obj
    [
      ("requests", Json.int s.Workload.requests);
      ("errors", Json.int s.Workload.errors);
      ("wall_s", Json.Num s.Workload.wall_s);
      ("req_per_s", Json.Num s.Workload.req_per_s);
      ("p50_ms", Json.Num s.Workload.p50_ms);
      ("p99_ms", Json.Num s.Workload.p99_ms);
    ]

let cmd_client socket req bench stress repeat connections corpus out telemetry
    =
  with_telemetry "client" telemetry @@ fun () ->
  if bench then begin
    let sources =
      match corpus with None -> [] | Some dir -> corpus_sources dir
    in
    let items = Workload.mixed ~stress ~sources () in
    match Workload.replay ~connections ~repeat ~socket items with
    | Error m -> die "%s" m
    | Ok (_, s) ->
      let line = Json.to_string (summary_json s) in
      print_endline line;
      Option.iter (fun p -> write_file p (line ^ "\n")) out;
      if s.Workload.errors > 0 then exit 1
  end
  else begin
    let line =
      match req with
      | Some s -> s
      | None -> (
        try input_line stdin
        with End_of_file -> die "client: no request given (--req or stdin)")
    in
    match Json.parse line with
    | Error m -> die "request is not valid JSON: %s" m
    | Ok j -> (
      match Workload.connect socket with
      | Error m -> die "%s" m
      | Ok conn ->
        let resp =
          match Workload.request conn j with
          | Ok r -> r
          | Error m ->
            Workload.close conn;
            die "%s" m
        in
        Workload.close conn;
        print_endline (Json.to_string resp);
        (match Json.mem_bool "ok" resp with
        | Some true -> ()
        | _ -> exit 1))
  end

(* ---- cmdliner glue --------------------------------------------------- *)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".csp file")

let opt_path_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:".csp file (may be omitted in --family / --abstract modes)")

let model_arg =
  Arg.(
    value
    & opt string "token-ring"
    & info [ "model" ] ~docv:"NAME"
        ~doc:
          "Preset replica family: token-ring, leader, philosophers or \
           workers (aliases: ring, phils, pool)")

let name_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "p"; "process" ] ~docv:"NAME" ~doc:"Process name to run")

let depth_arg default =
  Arg.(value & opt int default & info [ "d"; "depth" ] ~doc:"Trace depth bound")

let nat_arg =
  Arg.(
    value & opt int 3
    & info [ "nat-bound" ] ~doc:"Sample size for NAT-typed inputs")

let steps_arg =
  Arg.(value & opt int 1000 & info [ "steps" ] ~doc:"Maximum simulation steps")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed")
let runs_arg = Arg.(value & opt int 20 & info [ "runs" ] ~doc:"Number of runs")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full proof tables")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel exploration/fuzzing (results are \
              identical to -j 1; only wall-clock changes)")

let compiled_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "compiled" ]
              ~doc:"Compile the process into flat successor tables before \
                    exploring/running (default).  Trace refinement \
                    (refine without --weak) is closure-based and ignores \
                    this flag." );
          ( false,
            info [ "no-compiled" ]
              ~doc:"Force the tree-walking interpreter; results are \
                    byte-identical, only slower." );
        ])

(* One shared telemetry term, appended to every subcommand. *)
let telemetry_arg =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the full telemetry snapshot (kernel caches, pool, \
                per-oracle counters, timers) as key = value lines on stderr")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the telemetry snapshot to FILE as one JSON object")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the span log to FILE in Chrome trace_event format \
                (load in chrome://tracing or Perfetto)")
  in
  Term.(
    const (fun stats stats_json trace_out -> { stats; stats_json; trace_out })
    $ stats $ stats_json $ trace_out)

let parse_cmd =
  Cmd.v (Cmd.info "parse" ~doc:"Parse and pretty-print a .csp file")
    Term.(const cmd_parse $ path_arg $ telemetry_arg)

let traces_cmd =
  let deno =
    Arg.(
      value & flag
      & info [ "denotational" ]
          ~doc:"Use the denotational fixpoint semantics instead of the \
                operational enumeration")
  in
  Cmd.v (Cmd.info "traces" ~doc:"Enumerate traces of a process")
    Term.(
      const cmd_traces $ path_arg $ name_arg $ depth_arg 5 $ nat_arg $ deno
      $ telemetry_arg)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute a process with a random scheduler, monitoring its \
             declared assertions")
    Term.(
      const cmd_simulate $ path_arg $ name_arg $ steps_arg $ seed_arg $ nat_arg
      $ telemetry_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Bounded model check of every declared assertion (exact up to \
             the depth and sample)")
    Term.(const cmd_check $ path_arg $ depth_arg 6 $ nat_arg $ telemetry_arg)

let prove_cmd =
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE" ~doc:"Write proof certificates here")
  in
  let family =
    Arg.(
      value
      & opt (some string) None
      & info [ "family" ] ~docv:"FORMULA"
          ~doc:
            "Certify the --model family's invariants for every parameter \
             value satisfying this assumption formula (e.g. 'n <= 32' or \
             'n >= 2'), one counter-abstract run per assignment class")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Prove every declared assertion with the inference rules of the \
             paper, using the declarations as loop invariants; with \
             --family, certify a whole parameterised family instead")
    Term.(
      const cmd_prove $ opt_path_arg $ verbose_arg $ emit $ family $ model_arg
      $ depth_arg 6 $ telemetry_arg)

let check_cert_cmd =
  let cert =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CERT" ~doc:"Certificate file from prove --emit")
  in
  Cmd.v
    (Cmd.info "check-cert"
       ~doc:"Re-verify proof certificates against the definitions, without \
             re-running the tactic")
    Term.(const cmd_check_cert $ path_arg $ cert $ telemetry_arg)

let graph_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to this file")
  in
  let max_states =
    Arg.(value & opt int 2000 & info [ "max-states" ] ~doc:"State bound")
  in
  let relaxed =
    Arg.(
      value & flag
      & info [ "relaxed" ]
          ~doc:
            "Relaxed parallel exploration: workers explore autonomously and \
             state numbering varies run to run (same state/transition sets, \
             checked against deterministic mode by the test oracle).  Only \
             meaningful with --jobs > 1.")
  in
  let abstract =
    Arg.(
      value
      & opt (some string) None
      & info [ "abstract" ] ~docv:"MODE"
          ~doc:
            "Graph an abstraction instead of a concrete file; the only mode \
             is 'counter' (counter-abstract quotient of the --model family \
             at size --n)")
  in
  let fam_n =
    Arg.(
      value & opt int 4
      & info [ "size" ] ~docv:"N" ~doc:"Family instance size n for --abstract")
  in
  let opt_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "process" ] ~docv:"NAME" ~doc:"Process name to explore")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Explore the labelled transition system and emit Graphviz DOT; \
             with --abstract counter, graph a family's abstract quotient")
    Term.(
      const cmd_graph $ opt_path_arg $ opt_name $ max_states $ nat_arg $ out
      $ jobs_arg $ compiled_arg $ relaxed $ abstract $ model_arg $ fam_n
      $ telemetry_arg)

let refusals_cmd =
  Cmd.v
    (Cmd.info "refusals"
       ~doc:"Print the bounded stable-failures of a process (the §4 \
             extension: distinguishes STOP|P from P and reports \
             deadlocks)")
    Term.(
      const cmd_refusals $ path_arg $ name_arg $ depth_arg 3 $ nat_arg
      $ telemetry_arg)

let refine_cmd =
  let spec =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "spec" ] ~docv:"NAME" ~doc:"Specification process")
  in
  let weak =
    Arg.(
      value & flag
      & info [ "weak" ] ~doc:"Check weak bisimilarity instead of trace \
                              refinement")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Check that one process trace-refines another (or is weakly \
             bisimilar to it)")
    Term.(
      const cmd_refine $ path_arg $ name_arg $ spec $ depth_arg 5 $ nat_arg
      $ weak $ jobs_arg $ compiled_arg $ telemetry_arg)

let infer_cmd =
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Discover invariants: observe simulated histories, \
             conjecture template instances, and prove the survivors \
             with the recursion rule")
    Term.(
      const cmd_infer $ path_arg $ name_arg $ nat_arg $ seed_arg
      $ telemetry_arg)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Generator seed (the run \
                                                  is deterministic for a \
                                                  fixed seed and case count)")
  in
  let cases =
    Arg.(value & opt int 200 & info [ "count" ] ~doc:"Generated scenarios")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; stops between cases, so completed cases \
                stay reproducible from the seed")
  in
  let oracles =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Run only this oracle (repeatable; default: all)")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Persist shrunk counterexamples into this corpus directory")
  in
  let replay =
    Arg.(
      value
      & opt (some dir) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:"First replay every corpus entry of this directory against \
                its recorded oracle")
  in
  let coverage =
    Arg.(
      value & flag
      & info [ "coverage" ]
          ~doc:"Coverage-guided mode: diff the telemetry registry around \
                every case, keep a corpus of coverage-gaining scenarios, \
                and bias generation toward the shapes that moved new \
                counters.  Deterministic for a fixed seed at any --jobs; \
                prints the coverage curve and the minimised corpus size")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential conformance fuzzing: generate random scenarios \
             and cross-check the closure kernel, the two semantics, the \
             refinement models and the prover against each other; failures \
             are shrunk and printed as parseable .csp text")
    Term.(
      const cmd_fuzz $ seed $ cases $ budget $ oracles $ save $ replay
      $ jobs_arg $ coverage $ telemetry_arg)

let deadlock_cmd =
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:"Search for deadlocks by repeated randomised execution (partial \
             correctness cannot rule them out — §4)")
    Term.(
      const cmd_deadlock $ path_arg $ name_arg $ steps_arg $ runs_arg
      $ nat_arg $ seed_arg $ compiled_arg $ telemetry_arg)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_cmd =
  let warm =
    Arg.(
      value
      & opt (some file) None
      & info [ "warm" ] ~docv:"FILE"
          ~doc:"Load this cache snapshot before accepting requests; the \
                first request then runs at warm-cache speed.  A corrupt or \
                version-mismatched snapshot refuses to start.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Protocol.default_limits.Protocol.max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame; oversized frames are \
                rejected without unbounded buffering")
  in
  let max_states =
    Arg.(
      value
      & opt int Protocol.default_limits.Protocol.max_states
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Per-request cap on graph exploration budgets")
  in
  let max_depth =
    Arg.(
      value
      & opt int Protocol.default_limits.Protocol.max_depth
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Per-request cap on refinement depth bounds")
  in
  let max_cases =
    Arg.(
      value
      & opt int Protocol.default_limits.Protocol.max_cases
      & info [ "max-cases" ] ~docv:"N"
          ~doc:"Per-request cap on fuzz case counts")
  in
  let max_sources =
    Arg.(
      value
      & opt int Protocol.default_limits.Protocol.max_sources
      & info [ "max-sources" ] ~docv:"N"
          ~doc:"Cached source contexts kept warm; the least recently used \
                is evicted when a new source would exceed this, so the \
                table stays bounded under a stream of distinct sources")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent verification service: a Unix-socket server \
             answering parse/graph/refine/prove/fuzz requests \
             (newline-delimited JSON) from one shared cache-warm engine, \
             byte-identical to the one-shot subcommands")
    Term.(
      const cmd_serve $ socket_arg $ jobs_arg $ warm $ max_frame $ max_states
      $ max_depth $ max_cases $ max_sources $ telemetry_arg)

let client_cmd =
  let req =
    Arg.(
      value
      & opt (some string) None
      & info [ "req" ] ~docv:"JSON"
          ~doc:"One request object to send (default: read a line from stdin)")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:"Replay the mixed benchmark workload and print a summary \
                (req/sec, p50/p99 latency) as one JSON line")
  in
  let stress =
    Arg.(
      value & flag
      & info [ "stress" ]
          ~doc:"Use the large model instances of the stress suite in the \
                --bench workload")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N" ~doc:"Replay the --bench workload N times")
  in
  let connections =
    Arg.(
      value & opt int 1
      & info [ "connections" ] ~docv:"N"
          ~doc:"Persistent connections to round-robin --bench requests over")
  in
  let corpus =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Add every .csp file of this directory to the --bench \
                workload")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the --bench summary JSON here")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running cspc serve: send one request (exit status \
             follows the response), or replay the benchmark workload with \
             --bench")
    Term.(
      const cmd_client $ socket_arg $ req $ bench $ stress $ repeat
      $ connections $ corpus $ out $ telemetry_arg)

let main =
  Cmd.group
    (Cmd.info "cspc" ~version:"1.0.0"
       ~doc:"Trace assertions and proofs for communicating sequential \
             processes (Zhou & Hoare, 1981)")
    [
      parse_cmd; traces_cmd; simulate_cmd; check_cmd; prove_cmd;
      deadlock_cmd; graph_cmd; refusals_cmd; infer_cmd; refine_cmd;
      check_cert_cmd; fuzz_cmd; serve_cmd; client_cmd;
    ]

let () = exit (Cmd.eval main)
